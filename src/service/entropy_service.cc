#include "service/entropy_service.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

#include "common/error.hh"
#include "common/parallel.hh"

namespace quac::service
{

const char *
priorityName(Priority priority)
{
    switch (priority) {
    case Priority::Interactive: return "interactive";
    case Priority::Standard: return "standard";
    case Priority::Bulk: return "bulk";
    }
    return "?";
}

const char *
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
    case PlacementPolicy::RoundRobin: return "round-robin";
    case PlacementPolicy::LeastLoaded: return "least-loaded";
    }
    return "?";
}

const char *
admissionDecisionName(AdmissionDecision decision)
{
    switch (decision) {
    case AdmissionDecision::Admitted: return "admitted";
    case AdmissionDecision::Queued: return "queued";
    case AdmissionDecision::Denied: return "denied";
    }
    return "?";
}

namespace
{

/**
 * Ring cursors pack a 16-bit storage generation over a 48-bit
 * monotonic byte position. Positions never wrap in practice (2^48
 * bytes per shard outlives any run); the generation only changes
 * when the ring storage itself is replaced, which is what fences
 * in-flight lock-free claims off the old buffer.
 */
constexpr uint64_t kCursorPosBits = 48;
constexpr uint64_t kCursorPosMask =
    (uint64_t{1} << kCursorPosBits) - 1;

constexpr uint64_t
packCursor(uint64_t gen, uint64_t pos)
{
    return (gen << kCursorPosBits) | (pos & kCursorPosMask);
}

constexpr uint64_t
cursorGen(uint64_t word)
{
    return word >> kCursorPosBits;
}

constexpr uint64_t
cursorPos(uint64_t word)
{
    return word & kCursorPosMask;
}

} // anonymous namespace

/**
 * Per-client registration. The shard pin is atomic so migration can
 * race with the client's own requests (a request in flight resolves
 * the pin once, at entry). Statistics are relaxed per-client atomics
 * — the sharded accumulators of the lock-free data plane — so a
 * request never serializes against a stats() reader or another
 * request after a migration. Counts observed after a thread join are
 * exact; a concurrent stats() snapshot may tear between fields, but
 * each field is itself exact.
 */
struct EntropyService::Client::State
{
    std::string name;
    Priority priority = Priority::Standard;
    std::atomic<size_t> shard{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> bufferHits{0};
    std::atomic<uint64_t> synchronousFills{0};
    std::atomic<uint64_t> partialServes{0};
    std::atomic<uint64_t> denials{0};
    std::atomic<uint64_t> bytesServed{0};
    std::atomic<uint64_t> bytesFromBuffer{0};
    std::atomic<uint64_t> bytesSynchronous{0};
    std::atomic<uint64_t> migrations{0};
};

EntropyService::EntropyService(std::vector<core::Trng *> backends,
                               EntropyServiceConfig cfg)
    : cfg_(std::move(cfg)), backends_(std::move(backends))
{
    if (backends_.empty())
        fatal("EntropyService needs at least one backend");
    for (core::Trng *backend : backends_) {
        if (!backend)
            fatal("EntropyService backend is null");
    }
    if (cfg_.refillWatermark < 0.0 || cfg_.refillWatermark > 1.0)
        fatal("refill watermark must be in [0, 1]");
    if (cfg_.panicWatermark < 0.0 ||
        cfg_.panicWatermark > cfg_.refillWatermark)
        fatal("panic watermark must be in [0, refill watermark]");
    if (cfg_.shardCapacityBytes == 0)
        fatal("shard capacity must be > 0 (for an unbuffered "
              "generator call Trng::fill directly)");
    if (cfg_.refillThreads == 0)
        fatal("refill threads must be >= 1 (1 = serial refill)");
    if (cfg_.placementLatencyWeight < 0.0)
        fatal("placement latency weight must be >= 0");
    if (cfg_.placementBusyWeight < 0.0)
        fatal("placement busy weight must be >= 0");
    if (cfg_.recentLatencyWindow == 0)
        fatal("recent latency window must hold at least one sample");
    if (cfg_.admission.enabled) {
        if (cfg_.admission.interactiveSloNs <= 0.0)
            fatal("admission control needs an interactive SLO > 0");
        if (cfg_.admission.headroomFraction <= 0.0 ||
            cfg_.admission.headroomFraction > 1.0)
            fatal("admission headroom fraction must be in (0, 1]");
        if (cfg_.admission.maxQueuedConnects == 0)
            fatal("admission queue must hold at least one connect "
                  "(disable admission for an always-deny gate)");
        if (cfg_.admission.retryBackoffTicks == 0)
            fatal("admission retry backoff must be >= 1 tick");
        if (cfg_.admission.maxBackoffTicks <
            cfg_.admission.retryBackoffTicks)
            fatal("admission backoff ceiling below the base backoff");
        if (cfg_.admission.tailDecayPerSample < 0.0 ||
            cfg_.admission.tailDecayPerSample >= 1.0)
            fatal("admission tail decay must be in [0, 1) "
                  "(0 disables the decayed estimate)");
    }
    admissionStats_.enabled = cfg_.admission.enabled;

    // The HealthMonitor and StreamingHealthTester constructors
    // validate the health knobs themselves (zero/misaligned window,
    // out-of-range entropy or cutoffs) via fatal().
    if (cfg_.health.enabled)
        monitor_ = std::make_unique<HealthMonitor>(backends_.size(),
                                                   cfg_.health);

    size_t nshards = cfg_.shards ? cfg_.shards : backends_.size();
    backendLocks_.reserve(backends_.size());
    for (size_t b = 0; b < backends_.size(); ++b)
        backendLocks_.push_back(std::make_unique<Mutex>());

    sourcingCount_.assign(backends_.size(), 0);
    shards_.reserve(nshards);
    for (size_t i = 0; i < nshards; ++i) {
        auto shard = std::make_unique<Shard>();
        size_t backend_index = i % backends_.size();
        // relaxed: construction is single-threaded; the service is
        // published to other threads after the constructor returns.
        shard->backendIndex.store(backend_index,
                                  std::memory_order_relaxed);
        shard->homeBackend = backend_index;
        shard->backend = backends_[backend_index];
        shard->recent = RecentLatencyWindow(cfg_.recentLatencyWindow);
        ++sourcingCount_[backend_index];
        shards_.push_back(std::move(shard));
    }
}

size_t
EntropyService::chunkLocked(Shard &shard)
{
    if (!shard.chunkKnown) {
        {
            // May run the backend's one-time setup
            // (characterization); deferred to first use so
            // construction stays cheap and setup sees the module
            // state at refill time, exactly as the original
            // RngService behaved.
            MutexLock backend_lock(
                // relaxed: backendIndex only changes under the shard
                // mutex held here.
                *backendLocks_[shard.backendIndex.load(
                    std::memory_order_relaxed)]);
            shard.chunk = shard.backend->preferredChunkBytes();
        }
        shard.chunkKnown = true;
        // Capacity plus one chunk of headroom: refills pull whole
        // backend iterations and discard no generated entropy, so a
        // full shard can exceed capacity by less than one chunk.
        size_t storage = cfg_.shardCapacityBytes + shard.chunk;
        if (storage != shard.ring.size()) {
            // Replacing the storage invalidates every outstanding
            // ring position: fence lock-free readers out first.
            QUAC_ASSERT(levelOf(shard) == 0,
                        "resizing a non-flushed ring");
            ringResetLocked(shard);
            shard.ring.assign(storage, 0);
        }
    }
    return shard.chunk;
}

EntropyService::~EntropyService()
{
    stopAutoRefill();
}

size_t
EntropyService::levelOf(const Shard &shard)
{
    // relaxed: paired with the acquire load of tail above; a stale
    // claim only under-reports the level.
    uint64_t tail = shard.tail.load(std::memory_order_acquire);
    uint64_t claim = shard.claim.load(std::memory_order_relaxed);
    if (cursorGen(tail) != cursorGen(claim))
        return 0; // cursors mid-reset: the ring is empty anyway
    uint64_t published = cursorPos(tail);
    uint64_t claimed = cursorPos(claim);
    return published > claimed
               ? static_cast<size_t>(published - claimed)
               : 0;
}

size_t
EntropyService::ringTake(Shard &shard, uint8_t *out, size_t len,
                         bool all_or_nothing)
{
    if (len == 0)
        return 0;
    // relaxed: first guess only; the CAS below is the synchronizing
    // operation.
    uint64_t claim = shard.claim.load(std::memory_order_relaxed);
    uint64_t gen, pos;
    size_t take;
    for (;;) {
        uint64_t tail = shard.tail.load(std::memory_order_acquire);
        gen = cursorGen(claim);
        pos = cursorPos(claim);
        if (cursorGen(tail) != gen) {
            // Storage reset in flight; the mutex path handles it.
            return 0;
        }
        uint64_t avail = cursorPos(tail) - pos;
        take = static_cast<size_t>(std::min<uint64_t>(len, avail));
        if (take == 0 || (all_or_nothing && take < len))
            return 0;
        // relaxed: CAS failure order — the reloaded claim is retried;
        // success publishes with acq_rel.
        if (shard.claim.compare_exchange_weak(
                claim, packCursor(gen, pos + take),
                std::memory_order_acq_rel,
                std::memory_order_relaxed))
            break;
        // claim reloaded by the failed CAS; recompute and retry.
    }
    // Storage is only touched after a successful claim: the claim
    // certifies the generation, and ringResetLocked cannot replace
    // the buffer until this claim's readDone below retires. The
    // acquire on tail ordered the producer's byte writes (and any
    // earlier storage assignment) before these reads.
    size_t cap = shard.ring.size();
    size_t start = static_cast<size_t>(pos % cap);
    size_t first = std::min(take, cap - start);
    std::memcpy(out, shard.ring.data() + start, first);
    if (take > first)
        std::memcpy(out + first, shard.ring.data(), take - first);
    // Ticket-ordered completion: readDone advances in claim order,
    // so the producer's overwrite horizon (readDone + capacity)
    // never runs past an unfinished copy. The wait is bounded by the
    // memcpys of earlier claimants, who hold no lock.
    uint64_t ticket = packCursor(gen, pos);
    while (shard.readDone.load(std::memory_order_acquire) != ticket)
        std::this_thread::yield();
    shard.readDone.store(packCursor(gen, pos + take),
                         std::memory_order_release);
    return take;
}

size_t
EntropyService::ringFlushLocked(Shard &shard)
// relaxed: the mutex held here is what fences producers and resets; the
// CAS below orders the claim jump.
{
    uint64_t tail = shard.tail.load(std::memory_order_relaxed);
    uint64_t claim = shard.claim.load(std::memory_order_relaxed);
    // Generations cannot diverge here: resets run under the mutex we
    // hold. A racing lock-free read may still claim part of the span
    // before the flush lands; only the remainder is dropped.
    for (;;) {
        uint64_t dropped = cursorPos(tail) - cursorPos(claim);
        if (dropped == 0)
            return 0;
        // relaxed: CAS failure order of the retry loop.
        if (shard.claim.compare_exchange_weak(
                claim, tail, std::memory_order_acq_rel,
                std::memory_order_relaxed))
            break;
    }
    // No reader ever claimed the dropped span, so no ticket will
    // retire it: readDone must skip it or the producer's free-space
    // wait in pullLocked would starve once the write horizon wraps.
    // First let in-flight readers (tickets below the old claim)
    // retire — they hold no lock, only CPU time — then jump over the
    // span. New claims cannot start meanwhile: claim == tail means
    // nothing is available, and publishing more requires the mutex
    // this thread holds.
    while (shard.readDone.load(std::memory_order_acquire) != claim)
        std::this_thread::yield();
    shard.readDone.store(tail, std::memory_order_release);
    return static_cast<size_t>(cursorPos(tail) - cursorPos(claim));
}

void
EntropyService::ringResetLocked(Shard &shard)
{
    // relaxed: the generation bump is published by the acq_rel exchange
    // below, not this read.
    uint64_t fresh = packCursor(
        cursorGen(shard.claim.load(std::memory_order_relaxed)) + 1,
        0);
    // The exchange invalidates every in-flight CAS (old generation)
    // and hands back the final old-generation claim word, which is
    // exactly where readDone must arrive before the old storage is
    // safe to replace.
    uint64_t drained =
        shard.claim.exchange(fresh, std::memory_order_acq_rel);
    while (shard.readDone.load(std::memory_order_acquire) != drained)
        // relaxed: readers resynchronize through the release store of
        // tail below.
        std::this_thread::yield();
    shard.readDone.store(fresh, std::memory_order_relaxed);
    shard.tail.store(fresh, std::memory_order_release);
}

size_t
EntropyService::pullLocked(Shard &shard, size_t want)
{
    if (want == 0)
        return 0;
    size_t cap = shard.ring.size();
    QUAC_ASSERT(levelOf(shard) + want <= cap,
                "ring overflow: %zu + %zu > %zu", levelOf(shard),
                // relaxed: tail is producer-private — only mutex-
                // holding threads store it, and we hold the mutex.
                want, cap);
    uint64_t tail = shard.tail.load(std::memory_order_relaxed);
    uint64_t gen = cursorGen(tail);
    uint64_t tail_pos = cursorPos(tail);
    // The region about to be written may still be under an in-flight
    // lock-free copy (readDone trails claim by the claimed ranges);
    // wait for those copies to retire. They only need CPU time, not
    // any lock this thread holds.
    for (;;) {
        uint64_t done =
            shard.readDone.load(std::memory_order_acquire);
        if (cursorGen(done) == gen &&
            tail_pos - cursorPos(done) + want <= cap)
            break;
        std::this_thread::yield();
    }
    size_t start = static_cast<size_t>(tail_pos % cap);
    size_t first = std::min(want, cap - start);
    // relaxed: backendIndex only changes under the shard mutex held
    // here.
    size_t backend_index =
        shard.backendIndex.load(std::memory_order_relaxed);
    bool failed = false;
    bool healthy = true;
    {
        MutexLock backend_lock(
            *backendLocks_[backend_index]);
        try {
            shard.backend->fill(shard.ring.data() + start, first);
            if (want > first)
                shard.backend->fill(shard.ring.data(), want - first);
        } catch (const std::exception &) {
            // The backend misbehaved mid-fill (satellite: this used
            // to escape the auto-refill thread and std::terminate).
            // Nothing is admitted to the ring; the shard keeps
            // serving the bytes it already buffered.
            failed = true;
        }
        if (!failed && monitor_) {
            // Observe after the fill, in stream order (still under
            // the backend lock so concurrent sharers can't reorder
            // their observations).
            bool changed = monitor_->observe(
                backend_index, shard.ring.data() + start, first);
            if (want > first) {
                changed |= monitor_->observe(backend_index,
                                             shard.ring.data(),
                                             want - first);
            }
            if (changed)
                resourceEpoch_.fetch_add(1,
                                         std::memory_order_acq_rel);
            // A state transition during this very pull marks the
            // whole span suspect even if the bank ended it servable
            // (a large pull over a bounded fault can quarantine AND
            // re-admit within one observe; admitting those bytes
            // would serve the detected-bad window between the two
            // transitions).
            healthy = !changed && monitor_->servable(backend_index);
        }
    }
    // relaxed: monotonic stats counter(s); readers take snapshots and
    // need no ordering.
    if (failed) {
        refillFailures_.fetch_add(1, std::memory_order_relaxed);
        if (monitor_ && monitor_->reportReadFailure(backend_index))
            resourceEpoch_.fetch_add(1, std::memory_order_acq_rel);
        if (monitor_ && !monitor_->servable(backend_index)) {
            // Repeated failures crossed the quarantine limit: the
            // buffered bytes are from a now-detected-unhealthy bank.
            unhealthyBytesDropped_.fetch_add(
                ringFlushLocked(shard), std::memory_order_relaxed);
            resourceShardLocked(shard);
        }
        return 0;
    }
    if (!healthy) {
        // This very pull detected the collapse: the pulled bytes
        // were never published (tail unmoved), everything still
        // buffered from the bank is dropped unserved, and the shard
        // relaxed: monotonic stats counter(s); readers take snapshots
        // and need no ordering.
        // moves to a servable bank.
        unhealthyBytesDropped_.fetch_add(
            want + ringFlushLocked(shard),
            std::memory_order_relaxed);
        resourceShardLocked(shard);
        return 0;
    }
    // Publish: the release store is what hands the freshly written
    // bytes to lock-free readers.
    shard.tail.store(packCursor(gen, tail_pos + want),
                     std::memory_order_release);
    // A full top-up retires the shard's congestion history: the tail
    // the window measured came from an empty buffer that no longer
    // exists, and without this reset a recovered shard that lost its
    // timed traffic (e.g. after its clients migrated away) would
    // repel placements and trip the latency rebalancer forever. If
    // congestion persists, the very next misses rebuild the signal.
    if (levelOf(shard) >= cfg_.shardCapacityBytes)
        shard.recent.clear();
    return want;
}

void
EntropyService::moveShardLocked(Shard &shard, size_t target)
{
    QUAC_ASSERT(levelOf(shard) == 0,
                // relaxed: backendIndex only changes under the shard
                // mutex held here.
                "re-sourcing a non-flushed shard");
    size_t old = shard.backendIndex.load(std::memory_order_relaxed);
    {
        MutexLock lock(sourcingMutex_);
        --sourcingCount_[old];
        ++sourcingCount_[target];
    }
    shard.backendIndex.store(target, std::memory_order_release);
    shard.backend = backends_[target];
    // Chunk granularity differs per backend; re-resolve lazily (the
    // resize in chunkLocked is safe: the ring is empty).
    // relaxed: monotonic stats counter(s); readers take snapshots and
    // need no ordering.
    shard.chunkKnown = false;
    resourcings_.fetch_add(1, std::memory_order_relaxed);
}

void
EntropyService::resourceShardLocked(Shard &shard)
// relaxed: backendIndex only changes under the shard mutex held here.
{
    size_t old = shard.backendIndex.load(std::memory_order_relaxed);
    size_t best = old;
    size_t best_count = std::numeric_limits<size_t>::max();
    {
        MutexLock lock(sourcingMutex_);
        for (size_t b = 0; b < backends_.size(); ++b) {
            if (b == old)
                continue;
            if (monitor_ && !monitor_->servable(b))
                continue;
            // Strict < on an ascending scan: fewest sourcing shards
            // wins, ties to the lowest index. Spare banks (count 0)
            // are preferred, which is what keeps every healthy
            // shard's stream untouched by someone else's failover.
            if (sourcingCount_[b] < best_count) {
                best = b;
                best_count = sourcingCount_[b];
            }
        }
    }
    if (best == old)
        return; // no servable alternative; stay (flagged-but-serving)
    moveShardLocked(shard, best);
}

void
EntropyService::revalidateLocked(Shard &shard)
{
    if (!monitor_)
        return;
    // relaxed: seenEpoch and backendIndex only change under the shard
    // mutex held here; the acquire on resourceEpoch_ above orders the
    // comparison.
    uint64_t epoch = resourceEpoch_.load(std::memory_order_acquire);
    if (shard.seenEpoch.load(std::memory_order_relaxed) == epoch)
        return;
    size_t backend_index =
        shard.backendIndex.load(std::memory_order_relaxed);
    if (!monitor_->servable(backend_index)) {
        // The bank was quarantined by someone else's observation
        // (another shard's pull, a probation draw): drop the
        // buffered bytes unserved and move.
        unhealthyBytesDropped_.fetch_add(ringFlushLocked(shard),
                                         std::memory_order_relaxed);
        resourceShardLocked(shard);
    } else if (backend_index != shard.homeBackend &&
               monitor_->state(shard.homeBackend) ==
                   BankState::Healthy) {
        // Home bank re-admitted: return, freeing the donor for the
        // next failover. The donor bytes still buffered are healthy
        // but discarded — continuity of the home stream matters
        // more than one ring of spare entropy.
        ringFlushLocked(shard);
        moveShardLocked(shard, shard.homeBackend);
    }
    // Published only after any flush/re-sourcing above: a lock-free
    // reader that observes the fresh epoch (acquire) is therefore
    // ordered after the flush and can never claim the dropped span.
    shard.seenEpoch.store(epoch, std::memory_order_release);
}

size_t
EntropyService::deficitLocked(Shard &shard, double frac)
{
    size_t capacity = cfg_.shardCapacityBytes;
    size_t threshold =
        static_cast<size_t>(frac * static_cast<double>(capacity));
    size_t buffered = levelOf(shard);
    if (buffered > threshold)
        return 0;
    size_t want = capacity > buffered ? capacity - buffered : 0;
    if (want == 0)
        return 0;
    size_t chunk = chunkLocked(shard);
    if (chunk > 0)
        want = (want + chunk - 1) / chunk * chunk;
    return want;
}

size_t
EntropyService::refillShard(Shard &shard)
{
    MutexLock lock(shard.mutex);
    revalidateLocked(shard);
    size_t want = deficitLocked(shard, cfg_.refillWatermark);
    if (want == 0)
        return 0;
    size_t added = pullLocked(shard, want);
    if (added == 0)
        // relaxed: monotonic stats counter(s); readers take snapshots
        // and need no ordering.
        return 0;
    refills_.fetch_add(1, std::memory_order_relaxed);
    bytesRefilled_.fetch_add(added, std::memory_order_relaxed);
    return added;
}

size_t
EntropyService::refillBelowWatermark()
{
    if (shards_.size() == 1 || cfg_.refillThreads == 1) {
        size_t added = 0;
        for (auto &shard : shards_)
            added += refillShard(*shard);
        return added;
    }
    std::atomic<size_t> added{0};
    parallelFor(0, shards_.size(), [&](size_t i) {
        // relaxed: the worker join inside parallelFor publishes the
        // sum.
        added.fetch_add(refillShard(*shards_[i]),
                        std::memory_order_relaxed);
    }, cfg_.refillThreads);
    return added.load();
}

size_t
EntropyService::refillTick(size_t budget_bytes)
{
    std::vector<size_t> all(shards_.size());
    std::iota(all.begin(), all.end(), size_t{0});
    return refillTick(budget_bytes, all);
}

size_t
EntropyService::refillTick(size_t budget_bytes,
                           const std::vector<size_t> &shards)
{
    // Most-drained shards first; ties broken by index so the visit
    // order (and hence which shard the budget runs out on) is a
    // deterministic function of the levels.
    std::vector<size_t> order = shards;
    std::vector<size_t> levels(shards_.size());
    for (size_t index : order) {
        QUAC_ASSERT(index < shards_.size(), "shard=%zu", index);
        levels[index] = level(index);
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return levels[a] != levels[b] ? levels[a] < levels[b] : a < b;
    });

    size_t added = 0;
    for (size_t index : order) {
        if (budget_bytes == 0)
            break;
        Shard &shard = *shards_[index];
        MutexLock lock(shard.mutex);
        revalidateLocked(shard);
        size_t want = deficitLocked(shard, cfg_.refillWatermark);
        if (want == 0)
            continue;
        // One pull of as many whole chunks as the budget covers, so
        // the budget spreads across drained shards; the final chunk
        // may overshoot by < one chunk.
        size_t step = shard.chunk > 0 ? shard.chunk : want;
        size_t chunks =
            (std::min(budget_bytes, want) + step - 1) / step;
        size_t pulled =
            pullLocked(shard, std::min(want, chunks * step));
        if (pulled == 0)
            continue;
        // relaxed: monotonic stats counter(s); readers take snapshots
        // and need no ordering.
        budget_bytes -= std::min(budget_bytes, pulled);
        refills_.fetch_add(1, std::memory_order_relaxed);
        bytesRefilled_.fetch_add(pulled, std::memory_order_relaxed);
        added += pulled;
    }
    return added;
}

size_t
EntropyService::refillDemandBytes()
{
    return refillDemand().bytes;
}

size_t
EntropyService::urgentDemandBytes()
{
    return refillDemand().urgentBytes;
}

EntropyService::RefillDemand
EntropyService::refillDemand()
{
    std::vector<size_t> all(shards_.size());
    std::iota(all.begin(), all.end(), size_t{0});
    return refillDemand(all);
}

EntropyService::RefillDemand
EntropyService::refillDemand(const std::vector<size_t> &shards)
{
    RefillDemand demand;
    for (size_t index : shards) {
        QUAC_ASSERT(index < shards_.size(), "shard=%zu", index);
        Shard &shard = *shards_[index];
        MutexLock lock(shard.mutex);
        size_t deficit = deficitLocked(shard, cfg_.refillWatermark);
        size_t urgent = deficitLocked(shard, cfg_.panicWatermark);
        demand.bytes += deficit;
        // The panic threshold is <= the refill threshold, so per
        // shard urgent <= deficit; summing under one lock keeps the
        // invariant across shards too.
        demand.urgentBytes += std::min(urgent, deficit);
    }
    return demand;
}

void
EntropyService::startAutoRefill(std::chrono::microseconds period)
{
    MutexLock control(refillControlMutex_);
    if (refillThread_.joinable())
        return;
    {
        MutexLock lock(refillMutex_);
        stopRefill_ = false;
    }
    refillThread_ = std::thread([this, period]() {
        // The stop-flag recheck lives in the loop, not in a wait
        // predicate: a predicate lambda cannot carry the REQUIRES
        // annotation, and the analysis follows this shape. A
        // spurious wakeup at worst runs one top-up early.
        MutexLock lock(refillMutex_);
        while (!stopRefill_) {
            refillCv_.waitFor(refillMutex_, period);
            if (stopRefill_)
                break;
            lock.unlock();
            refillBelowWatermark();
            // Probation draws and eager transition propagation ride
            // the same cadence as the background top-ups.
            healthTick();
            lock.lock();
        }
    });
}

void
EntropyService::stopAutoRefill()
{
    MutexLock control(refillControlMutex_);
    if (!refillThread_.joinable())
        return;
    {
        MutexLock lock(refillMutex_);
        stopRefill_ = true;
    }
    refillCv_.notifyAll();
    refillThread_.join();
    refillThread_ = std::thread();
}

bool
EntropyService::autoRefillRunning() const
{
    MutexLock control(refillControlMutex_);
    return refillThread_.joinable();
}

size_t
EntropyService::level(size_t shard) const
{
    QUAC_ASSERT(shard < shards_.size(), "shard=%zu", shard);
    return levelOf(*shards_[shard]);
}

size_t
EntropyService::totalLevel() const
{
    size_t total = 0;
    for (size_t i = 0; i < shards_.size(); ++i)
        total += level(i);
    return total;
}

size_t
EntropyService::shardChunkBytes(size_t shard)
{
    QUAC_ASSERT(shard < shards_.size(), "shard=%zu", shard);
    Shard &target = *shards_[shard];
    MutexLock lock(target.mutex);
    return chunkLocked(target);
}

double
EntropyService::deficitFraction(const Shard &shard) const
{
    double capacity = static_cast<double>(cfg_.shardCapacityBytes);
    size_t buffered =
        std::min(levelOf(shard), cfg_.shardCapacityBytes);
    return (capacity - static_cast<double>(buffered)) / capacity;
}

double
EntropyService::busyHorizonNs(const Shard &shard) const
{
    // Modelled work the shard's backend is already committed to but
    // has not yet drained. busyUntilNs only ever moves forward under
    // the shard mutex; latestArrivalNs_ is the service-wide modelled
    // "now". Untimed workloads never advance either, so the horizon
    // stays 0 and the score reduces to deficit + p95 exactly.
    // relaxed: heuristic load-signal reads; momentary staleness only
    // perturbs a placement score.
    return std::max(0.0,
                    shard.busyUntilNs.load(std::memory_order_relaxed) -
                        latestArrivalNs_.load(
                            std::memory_order_relaxed));
}

double
EntropyService::loadOf(const Shard &shard) const
{
    return deficitFraction(shard) +
           shard.recent.p95Ns() * cfg_.placementLatencyWeight +
           busyHorizonNs(shard) * cfg_.placementBusyWeight;
}

double
EntropyService::shardLoad(size_t shard) const
{
    QUAC_ASSERT(shard < shards_.size(), "shard=%zu", shard);
    return loadOf(*shards_[shard]);
}

double
EntropyService::shardRecentPercentileNs(size_t shard, double q) const
{
    QUAC_ASSERT(shard < shards_.size(), "shard=%zu", shard);
    return shards_[shard]->recent.percentileNs(q);
}

EntropyService::ShardLoadSnapshot
EntropyService::shardLoadSnapshot(size_t shard) const
{
    QUAC_ASSERT(shard < shards_.size(), "shard=%zu", shard);
    const Shard &sampled = *shards_[shard];
    ShardLoadSnapshot snapshot;
    snapshot.recentP95Ns = sampled.recent.p95Ns();
    snapshot.recentP99Ns = sampled.recent.p99Ns();
    snapshot.load =
        deficitFraction(sampled) +
        snapshot.recentP95Ns * cfg_.placementLatencyWeight +
        busyHorizonNs(sampled) * cfg_.placementBusyWeight;
    return snapshot;
}

size_t
EntropyService::leastLoadedShard() const
{
    size_t best = 0;
    double best_load = shardLoad(0);
    for (size_t s = 1; s < shards_.size(); ++s) {
        double load = shardLoad(s);
        if (load < best_load) {
            best = s;
            best_load = load;
        }
    }
    return best;
}

EntropyService::Client
EntropyService::connect(std::string name, Priority priority,
                        size_t shard)
{
    MutexLock lock(clientsMutex_);
    if (shard == autoShard) {
        // Least-loaded placement only steers the latency-critical
        // class: interactive clients avoid drained/slow shards,
        // while standard/bulk traffic keeps spreading round-robin
        // instead of piling onto the emptiest shard.
        if (cfg_.placement == PlacementPolicy::LeastLoaded &&
            priority == Priority::Interactive) {
            shard = leastLoadedShard();
        } else {
            shard = nextShard_++ % shards_.size();
        }
    }
    if (shard >= shards_.size())
        fatal("client '%s' pinned to shard %zu of %zu", name.c_str(),
              shard, shards_.size());
    auto state = std::make_unique<Client::State>();
    state->name = std::move(name);
    state->priority = priority;
    state->shard.store(shard, std::memory_order_release);
    Client client(this, state.get());
    clients_.push_back(std::move(state));
    return client;
}

bool
EntropyService::migrateClient(const Client &client, size_t shard)
{
    QUAC_ASSERT(client.service_ == this, "client of another service");
    if (shard >= shards_.size())
        fatal("client '%s' migrated to shard %zu of %zu",
              client.state_->name.c_str(), shard, shards_.size());
    Client::State &state = *client.state_;
    if (state.shard.exchange(shard, std::memory_order_acq_rel) ==
        shard)
        // relaxed: monotonic stats counter(s); readers take snapshots
        // and need no ordering.
        return false;
    state.migrations.fetch_add(1, std::memory_order_relaxed);
    return true;
}

double
EntropyService::shardDecayedTailNs(size_t shard) const
{
    QUAC_ASSERT(shard < shards_.size(), "shard=%zu", shard);
    // relaxed: admission signal read; staleness is tolerated by the
    // gate.
    return shards_[shard]->decayedTailNs.load(
        std::memory_order_relaxed);
}

double
EntropyService::interactiveHeadroomP99Ns() const
{
    // Worst of the windowed p99 and the decayed estimate across
    // shards: the window is the precise signal while it has samples,
    // the decayed max is the memory that survives a full top-up
    // clearing the window (the gate must not snap open the instant a
    // refill retires its evidence).
    double worst = 0.0;
    for (size_t s = 0; s < shards_.size(); ++s) {
        worst = std::max(worst, shardRecentPercentileNs(s, 0.99));
        worst = std::max(worst, shardDecayedTailNs(s));
    }
    return worst;
}

bool
EntropyService::admissionHeadroom() const
{
    return interactiveHeadroomP99Ns() <=
           cfg_.admission.headroomFraction *
               cfg_.admission.interactiveSloNs;
}

EntropyService::AdmissionOutcome
EntropyService::admit(std::string name, Priority priority,
                      size_t shard)
{
    AdmissionOutcome outcome;
    if (!cfg_.admission.enabled || priority != Priority::Bulk) {
        // Interactive/Standard are the classes admission exists to
        // protect; they (and ungated services) connect directly.
        outcome.client = connect(std::move(name), priority, shard);
        return outcome;
    }
    // Probe headroom before taking the admission lock: the probe
    // walks the shard locks and must never nest inside it.
    bool headroom = admissionHeadroom();
    MutexLock lock(admissionMutex_);
    ++admissionStats_.attempts;
    if (headroom && admissionQueue_.empty()) {
        ++admissionStats_.admitted;
        lock.unlock();
        outcome.client = connect(std::move(name), priority, shard);
        return outcome;
    }
    if (admissionQueue_.size() >= cfg_.admission.maxQueuedConnects) {
        ++admissionStats_.denied;
        outcome.decision = AdmissionDecision::Denied;
        return outcome;
    }
    PendingConnect pending;
    pending.name = std::move(name);
    pending.priority = priority;
    pending.shard = shard;
    pending.backoffTicks = cfg_.admission.retryBackoffTicks;
    pending.notBeforeTick = admissionTickIndex_ + pending.backoffTicks;
    admissionQueue_.push_back(std::move(pending));
    ++admissionStats_.queued;
    admissionStats_.maxQueueDepth =
        std::max<uint64_t>(admissionStats_.maxQueueDepth,
                           admissionQueue_.size());
    outcome.decision = AdmissionDecision::Queued;
    return outcome;
}

std::vector<EntropyService::Client>
EntropyService::admissionTick()
{
    std::vector<Client> admitted;
    if (!cfg_.admission.enabled)
        return admitted;
    // Age the decayed tail estimates: per-sample decay needs traffic
    // to make progress, and a shard whose clients all went quiet
    // would otherwise pin the gate shut forever. Each tick is one
    // more decay step, so parked connects' own retry probing is what
    // eventually reopens the gate.
    double decay = cfg_.admission.tailDecayPerSample;
    if (decay > 0.0) {
        // relaxed: decaying a heuristic signal; racing samples may
        // interleave in any order.
        for (const std::unique_ptr<Shard> &shard : shards_) {
            double cur =
                shard->decayedTailNs.load(std::memory_order_relaxed);
            while (cur > 0.0 &&
                   !shard->decayedTailNs.compare_exchange_weak(
                       cur, cur * decay, std::memory_order_relaxed)) {
            }
        }
    }
    bool headroom = admissionHeadroom();
    MutexLock lock(admissionMutex_);
    ++admissionTickIndex_;
    // Strict FIFO: the queue head gates everyone behind it, so a
    // connect that arrived first is admitted first — starvation-free
    // by construction, which is what makes "bounded and eventually
    // admitted" an assertable invariant.
    while (!admissionQueue_.empty()) {
        PendingConnect &head = admissionQueue_.front();
        if (head.notBeforeTick > admissionTickIndex_)
            break;
        ++admissionStats_.retries;
        if (!headroom) {
            // Still thin: back off, bounded exponentially, so a
            // congested service is probed ever more gently but a
            // parked connect never stops probing.
            head.backoffTicks =
                std::min(head.backoffTicks * 2,
                         cfg_.admission.maxBackoffTicks);
            head.notBeforeTick =
                admissionTickIndex_ + head.backoffTicks;
            break;
        }
        PendingConnect pending = std::move(head);
        admissionQueue_.pop_front();
        ++admissionStats_.admitted;
        ++admissionStats_.admittedFromQueue;
        lock.unlock();
        admitted.push_back(connect(std::move(pending.name),
                                   pending.priority, pending.shard));
        lock.lock();
    }
    return admitted;
}

EntropyService::AdmissionStats
EntropyService::admissionStats() const
{
    MutexLock lock(admissionMutex_);
    AdmissionStats stats = admissionStats_;
    stats.queuedNow = admissionQueue_.size();
    return stats;
}

size_t
EntropyService::retuneBackend(size_t backend,
                              const std::function<bool()> &reconfigure)
{
    QUAC_ASSERT(backend < backends_.size(), "backend=%zu", backend);
    if (reconfigure) {
        // Under the backend lock: no fill is in flight while the
        // generator's geometry changes.
        MutexLock backend_lock(
            *backendLocks_[backend]);
        if (!reconfigure())
            return 0;
    }
    size_t dropped = 0;
    for (auto &shard_ptr : shards_) {
        Shard &shard = *shard_ptr;
        // relaxed: a shard being re-sourced concurrently is re-flushed
        // by its own revalidation; this pass only needs the current
        // view.
        MutexLock lock(shard.mutex);
        if (shard.backendIndex.load(std::memory_order_relaxed) !=
            backend)
            continue;
        // The buffered bytes straddle the recalibration: suspect.
        // Dropping them (never serving) is the conservative side of
        // the paper's per-temperature guarantee. A racing lock-free
        // read that already claimed a span keeps it: those bytes
        // were generated (and observed healthy) before the retune.
        dropped += ringFlushLocked(shard);
        // The retune may change the backend's iteration geometry;
        // re-resolve the chunk (and ring headroom) lazily, exactly
        // as a re-sourcing does.
        shard.chunkKnown = false;
    }
    // relaxed: monotonic stats counter(s); readers take snapshots and
    // need no ordering.
    suspectBytesDropped_.fetch_add(dropped,
                                   std::memory_order_relaxed);
    return dropped;
}

size_t
EntropyService::markBackendSuspect(size_t backend)
{
    return retuneBackend(backend, nullptr);
}

void
EntropyService::setMissLatencyNsPerByte(double ns_per_byte)
{
    // relaxed: model parameter install; in-flight requests may price
    // with the old rate.
    QUAC_ASSERT(ns_per_byte >= 0.0, "ns_per_byte=%f", ns_per_byte);
    missNsPerByte_.store(ns_per_byte, std::memory_order_relaxed);
}

LatencyDistribution
EntropyService::latencySnapshot(Priority priority) const
{
    // The per-class distribution is sharded (one per shard) so a
    // timed request only contends with requests on its own shard;
    // the snapshot merges the pieces.
    LatencyDistribution merged;
    for (const auto &shard : shards_)
        merged.merge(
            shard->latencyByClass[static_cast<size_t>(priority)]);
    return merged;
}

void
EntropyService::resetLatencyStats()
{
    for (auto &shard : shards_) {
        for (LatencyDistribution &dist : shard->latencyByClass)
            dist = LatencyDistribution();
    }
}

bool
EntropyService::syncFillLegacyLocked(Shard &shard, uint8_t *out,
                                     size_t need)
{
    // Health off: no quarantine machinery, but a transient backend
    // error mid-request used to escape to the caller on the first
    // throw even when simply retrying would have served the bytes
    // (a ReadFailure window advances the stream past the fault on
    // every attempt). Catch, count, retry a bounded number of times
    // with a bounded backoff, then surface the last error — the
    // legacy contract that callers see persistent failures holds.
    for (uint32_t attempt = 0;; ++attempt) {
        try {
            MutexLock backend_lock(
                // relaxed: backendIndex only changes under the shard
                // mutex held here.
                *backendLocks_[shard.backendIndex.load(
                    std::memory_order_relaxed)]);
            shard.backend->fill(out, need);
            return true;
        } catch (const std::exception &) {
            refillFailures_.fetch_add(1, std::memory_order_relaxed);
            if (attempt >= cfg_.syncFillRetries)
                throw;
        }
        // Backoff outside the backend lock: give an interface fault
        // time to clear without holding the bank hostage (the cap
        // bounds the total stall at ~31x the base).
        if (cfg_.syncFillBackoff.count() > 0) {
            std::this_thread::sleep_for(cfg_.syncFillBackoff *
                                        (1u << std::min(attempt, 4u)));
        }
    }
}

bool
EntropyService::syncFillLocked(Shard &shard, uint8_t *out,
                               size_t need)
{
    if (!monitor_)
        return syncFillLegacyLocked(shard, out, need);
    // Bounded failover: each bank gets at most readFailureLimit
    // throwing attempts before quarantine moves the shard on, plus
    // one fill on the final destination.
    size_t max_attempts =
        backends_.size() *
        (size_t{cfg_.health.readFailureLimit} + 1);
    for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
        bool ok = true;
        bool changed = false;
        // relaxed: backendIndex only changes under the shard mutex held
        // here.
        size_t backend_index =
            shard.backendIndex.load(std::memory_order_relaxed);
        {
            MutexLock backend_lock(
                *backendLocks_[backend_index]);
            try {
                shard.backend->fill(out, need);
            } catch (const std::exception &) {
                ok = false;
            }
            if (ok) {
                changed = monitor_->observe(backend_index, out,
                                            need);
                if (changed)
                    resourceEpoch_.fetch_add(
                        1, std::memory_order_acq_rel);
            }
        }
        // relaxed: monotonic stats counter(s); readers take snapshots
        // and need no ordering.
        if (!ok) {
            refillFailures_.fetch_add(1, std::memory_order_relaxed);
            if (monitor_->reportReadFailure(backend_index))
                resourceEpoch_.fetch_add(1,
                                         std::memory_order_acq_rel);
        }
        // As in pullLocked, any transition during this fill marks
        // its bytes suspect even if the bank ended servable.
        if (changed || !monitor_->servable(backend_index)) {
            // Either this fill's bytes completed a failing window or
            // the failure streak crossed the limit. The bytes in
            // @p out were never handed to the client — drop them
            // with the ring and refill wholesale from a new bank.
            unhealthyBytesDropped_.fetch_add(
                // relaxed: monotonic stats counter(s); readers take
                // snapshots and need no ordering. backendIndex is re-
                // read under the shard mutex held here.
                (ok ? need : 0) + ringFlushLocked(shard),
                std::memory_order_relaxed);
            resourceShardLocked(shard);
            if (shard.backendIndex.load(std::memory_order_relaxed) ==
                backend_index)
                return false; // nowhere servable left
            continue;
        }
        if (ok)
            return true;
        // Transient failure below the quarantine limit: retry the
        // same bank (the stream position advanced past the fault).
    }
    return false;
}

RequestResult
EntropyService::finishRequest(Client::State &client, Shard &shard,
                              RequestResult result,
                              size_t synchronous_bytes,
                              double arrival_ns)
{
    // Tripwire (must stay zero): a serve that raced a cross-shard
    // detection of its bank. The flush-on-revalidate plumbing keeps
    // detected-unhealthy bytes out of every serve path; this counts
    // any leak instead of hiding it.
    if (monitor_ && result.bytes > 0 &&
        // relaxed: tripwire probe; a racing re-source at worst counts
        // one in-flight serve, which is the point.
        !monitor_->servable(
            shard.backendIndex.load(std::memory_order_relaxed))) {
        unhealthyBytesServed_.fetch_add(result.bytes,
                                        std::memory_order_relaxed);
    }

    if (!std::isnan(arrival_ns)) {
        // Modelled channel time: the request starts once the shard's
        // earlier modelled work has drained, pays the fixed
        // controller and SRAM-read costs, and a miss additionally
        // occupies the backend for the synchronous fill, queueing
        // later arrivals behind it (DR-STRaNGe's request-latency
        // view). Only misses advance busyUntilNs, and misses run
        // under the shard mutex; lock-free hits read it relaxed — a
        // hit racing a miss may miss the very newest queue depth,
        // which is the modelling precision a lock-free plane trades.
        // relaxed: all model state below (busyUntilNs,
        // latestArrivalNs_, the miss rate) is heuristic signal whose
        // tolerated staleness is described above.
        double installed =
            missNsPerByte_.load(std::memory_order_relaxed);
        double ns_per_byte =
            installed > 0.0 ? installed : cfg_.latency.missNsPerByte;
        // Advance the service-wide modelled "now" (monotonic max):
        // the placement busy-horizon is measured against it.
        double seen = latestArrivalNs_.load(std::memory_order_relaxed);
        while (arrival_ns > seen &&
               !latestArrivalNs_.compare_exchange_weak(
                   seen, arrival_ns, std::memory_order_relaxed)) {
        }
        double start = std::max(
            arrival_ns,
            shard.busyUntilNs.load(std::memory_order_relaxed));
        double service_ns =
            cfg_.latency.perRequestNs + cfg_.latency.hitNs +
            static_cast<double>(synchronous_bytes) * ns_per_byte;
        if (synchronous_bytes > 0)
            shard.busyUntilNs.store(start + service_ns,
                                    std::memory_order_relaxed);
        result.modeledLatencyNs = start + service_ns - arrival_ns;
        // Bulk requests never sync-fill, so their near-constant hit
        // cost would dilute the shard's tail-latency signal; the
        // window tracks what a latency-sensitive client experiences.
        if (client.priority != Priority::Bulk) {
            shard.recent.add(result.modeledLatencyNs);
            double decay = cfg_.admission.tailDecayPerSample;
            if (cfg_.admission.enabled && decay > 0.0) {
                // Decaying max: the admission gate's congestion
                // memory. Survives the recent-window reset a full
                // top-up performs (CAS because timed requests on the
                // same shard race each other here).
                double sample = result.modeledLatencyNs;
                // relaxed: CAS-max over a decaying signal; order
                // between racing samples is immaterial.
                double cur = shard.decayedTailNs.load(
                    std::memory_order_relaxed);
                for (;;) {
                    double next = std::max(sample, cur * decay);
                    if (next == cur ||
                        shard.decayedTailNs.compare_exchange_weak(
                            cur, next, std::memory_order_relaxed))
                        break;
                }
            }
        }
        shard.latencyByClass[static_cast<size_t>(client.priority)]
            .add(result.modeledLatencyNs);
    }

// relaxed: per-client accumulators; a concurrent snapshot may tear

// between fields, each field is exact.

    client.requests.fetch_add(1, std::memory_order_relaxed);
    client.bytesFromBuffer.fetch_add(result.bytesFromBuffer,
                                     std::memory_order_relaxed);
    client.bytesServed.fetch_add(result.bytes,
                                 std::memory_order_relaxed);
    if (result.denied) {
        // sync fill failed on every servable bank (or the request
        // exceeded maxRequestBytes)
        client.denials.fetch_add(1, std::memory_order_relaxed);
    } else if (result.hit) {
        client.bufferHits.fetch_add(1, std::memory_order_relaxed);
    } else if (client.priority == Priority::Bulk) {
        client.partialServes.fetch_add(1, std::memory_order_relaxed);
    } else {
        client.synchronousFills.fetch_add(1,
                                          std::memory_order_relaxed);
        client.bytesSynchronous.fetch_add(synchronous_bytes,
                                          std::memory_order_relaxed);
    }
    return result;
}

RequestResult
EntropyService::requestOn(Client::State &client, uint8_t *out,
                          size_t len, double arrival_ns)
{
    // The shard pin is resolved exactly once: a migration racing
    // with this request either redirects it entirely or not at all,
    // so the request always drains a single shard's stream.
    Shard &shard =
        *shards_[client.shard.load(std::memory_order_acquire)];

    RequestResult result;
    if (cfg_.maxRequestBytes && len > cfg_.maxRequestBytes) {
        // relaxed: per-client accumulators; a concurrent snapshot may
        // tear between fields, each field is exact.
        result.denied = true;
        client.requests.fetch_add(1, std::memory_order_relaxed);
        client.denials.fetch_add(1, std::memory_order_relaxed);
        return result;
    }

    bool bulk = client.priority == Priority::Bulk;
    // Lock-free fast path: when the shard has already revalidated
    // against the current resourcing epoch, a buffered read claims
    // its span straight off the ring — no shard mutex. Non-bulk
    // claims are all-or-nothing (a short claim would have to fall
    // through to a sync fill under the mutex anyway); bulk partial
    // claims are final, exactly like the mutex path's backpressure.
    if (cfg_.lockFreeReads &&
        (!monitor_ ||
         shard.seenEpoch.load(std::memory_order_acquire) ==
             resourceEpoch_.load(std::memory_order_acquire))) {
        size_t got = ringTake(shard, out, len,
                              /*all_or_nothing=*/!bulk);
        if (bulk || got == len) {
            result.bytes = got;
            result.bytesFromBuffer = got;
            result.hit = got == len;
            return finishRequest(client, shard, result, 0,
                                 arrival_ns);
        }
    }

    // Slow path: miss (sync fill), stale epoch, bulk under reset, or
    // lock-free reads disabled. The mutex serializes against
    // resourcing, retune, and the refill producer's slow paths.
    MutexLock lock(shard.mutex);
    revalidateLocked(shard);

    size_t from_buffer = ringTake(shard, out, len,
                                  /*all_or_nothing=*/false);
    size_t synchronous_bytes = 0;
    if (from_buffer == len) {
        result.bytes = len;
        result.hit = true;
    } else if (bulk) {
        // Buffer-only class: partial service is the backpressure
        // signal; the caller retries after the next refill.
        result.bytes = from_buffer;
    } else {
        // Drain what the buffer has, then complete synchronously on
        // the shard's backend (the paper's fallback when requests
        // outpace idle bandwidth). The same stream continues:
        // buffered bytes came from earlier positions of the
        // identical backend stream. Under health monitoring the
        // fill is observed, revalidated, and retried on a different
        // bank if this one throws or is detected unhealthy.
        if (syncFillLocked(shard, out + from_buffer,
                           len - from_buffer)) {
            synchronous_bytes = len - from_buffer;
            result.bytes = len;
        } else {
            // No servable bank could produce the bytes: hand over
            // the buffered prefix and deny the remainder rather
            // than serve bytes from a detected-unhealthy bank.
            result.denied = true;
            result.bytes = from_buffer;
        }
    }
    result.bytesFromBuffer = from_buffer;
    return finishRequest(client, shard, result, synchronous_bytes,
                         arrival_ns);
}

void
EntropyService::healthTick()
{
    if (!monitor_)
        return;
    // Probation sampling: quarantined banks source no shard, so the
    // monitor would never see another byte from them — re-admission
    // would deadlock. Draw one health window from each quarantined
    // or probation bank per tick; the draw is the bank's only
    // consumer, so its stream stays deterministic for the eventual
    // return home.
    size_t window_bytes = cfg_.health.windowBits / 8;
    std::vector<uint8_t> scratch(window_bytes);
    for (size_t b = 0; b < backends_.size(); ++b) {
        BankState state = monitor_->state(b);
        if (state != BankState::Quarantined &&
            state != BankState::Probation)
            continue;
        bool ok = true;
        {
            MutexLock backend_lock(
                *backendLocks_[b]);
            try {
                backends_[b]->fill(scratch.data(), window_bytes);
            } catch (const std::exception &) {
                ok = false;
            }
            if (ok && monitor_->observe(b, scratch.data(),
                                        window_bytes))
                resourceEpoch_.fetch_add(1,
                                         std::memory_order_acq_rel);
        }
        // relaxed: monotonic stats counter(s); readers take snapshots
        // and need no ordering.
        if (!ok) {
            refillFailures_.fetch_add(1, std::memory_order_relaxed);
            if (monitor_->reportReadFailure(b))
                resourceEpoch_.fetch_add(1,
                                         std::memory_order_acq_rel);
        }
    }
    // Eagerly propagate pending transitions: without this a shard
    // would only flush/re-source on its next request or refill.
    for (auto &shard_ptr : shards_) {
        Shard &shard = *shard_ptr;
        MutexLock lock(shard.mutex);
        revalidateLocked(shard);
    }
}

EntropyService::HealthStats
EntropyService::healthStats() const
{
    HealthStats stats;
    stats.enabled = monitor_ != nullptr;
    if (monitor_) {
        stats.quarantines = monitor_->quarantines();
        stats.readmissions = monitor_->readmissions();
    }
    // relaxed: stats snapshot; counters may tear between fields, each
    // is exact.
    stats.refillFailures =
        refillFailures_.load(std::memory_order_relaxed);
    stats.unhealthyBytesDropped =
        unhealthyBytesDropped_.load(std::memory_order_relaxed);
    stats.unhealthyBytesServed =
        unhealthyBytesServed_.load(std::memory_order_relaxed);
    stats.shardResourcings =
        resourcings_.load(std::memory_order_relaxed);
    return stats;
}

size_t
EntropyService::shardBackendIndex(size_t shard) const
{
    QUAC_ASSERT(shard < shards_.size(), "shard=%zu", shard);
    return shards_[shard]->backendIndex.load(
        std::memory_order_acquire);
}

uint64_t
EntropyService::requestsServed() const
{
    MutexLock lock(clientsMutex_);
    uint64_t total = 0;
    // relaxed: per-client accumulators; a concurrent snapshot may tear
    // between fields, each field is exact.
    for (const auto &client : clients_)
        total += client->requests.load(std::memory_order_relaxed);
    return total;
}

uint64_t
EntropyService::bufferHits() const
{
    MutexLock lock(clientsMutex_);
    uint64_t total = 0;
    // relaxed: per-client accumulators; a concurrent snapshot may tear
    // between fields, each field is exact.
    for (const auto &client : clients_)
        total += client->bufferHits.load(std::memory_order_relaxed);
    return total;
}

uint64_t
EntropyService::synchronousFills() const
{
    MutexLock lock(clientsMutex_);
    uint64_t total = 0;
    for (const auto &client : clients_) {
        // relaxed: per-client accumulators; a concurrent snapshot may
        // tear between fields, each field is exact.
        total +=
            client->synchronousFills.load(std::memory_order_relaxed);
    }
    return total;
}

uint64_t
EntropyService::denials() const
{
    MutexLock lock(clientsMutex_);
    uint64_t total = 0;
    // relaxed: per-client accumulators; a concurrent snapshot may tear
    // between fields, each field is exact.
    for (const auto &client : clients_)
        total += client->denials.load(std::memory_order_relaxed);
    return total;
}

RequestResult
EntropyService::Client::request(uint8_t *out, size_t len)
{
    return service_->requestOn(
        *state_, out, len, std::numeric_limits<double>::quiet_NaN());
}

RequestResult
EntropyService::Client::serveInto(uint8_t *out, size_t len) noexcept
{
    // The network front end's entry point: identical to request()
    // — the payload is claimed straight off the lock-free shard
    // ring into the caller's response buffer — except that a
    // backend failure escaping the retry ladder surfaces as a
    // denied result. A wire server must answer DENY; an exception
    // unwinding through its epoll loop would kill every client.
    try {
        return service_->requestOn(
            *state_, out, len,
            std::numeric_limits<double>::quiet_NaN());
    } catch (...) {
        RequestResult result;
        result.denied = true;
        // The throwing path aborted before finishRequest's
        // bookkeeping; count the request and the denial here so
        // relaxed: per-client accumulators; a concurrent snapshot may
        // tear between fields, each field is exact.
        // wire-side and service-side accounting stay reconciled.
        state_->requests.fetch_add(1, std::memory_order_relaxed);
        state_->denials.fetch_add(1, std::memory_order_relaxed);
        return result;
    }
}

RequestResult
EntropyService::Client::requestAt(uint8_t *out, size_t len,
                                  double arrival_ns)
{
    QUAC_ASSERT(!std::isnan(arrival_ns), "arrival is NaN");
    return service_->requestOn(*state_, out, len, arrival_ns);
}

std::vector<uint8_t>
EntropyService::Client::request(size_t len)
{
    std::vector<uint8_t> out(len);
    RequestResult result = request(out.data(), len);
    out.resize(result.bytes);
    return out;
}

const std::string &
EntropyService::Client::name() const
{
    return state_->name;
}

Priority
EntropyService::Client::priority() const
{
    return state_->priority;
}

size_t
EntropyService::Client::shard() const
{
    return state_->shard.load(std::memory_order_acquire);
}

ClientStats
EntropyService::Client::stats() const
{
    const State &state = *state_;
    // relaxed: per-client accumulators; a concurrent snapshot may tear
    // between fields, each field is exact.
    ClientStats stats;
    stats.requests = state.requests.load(std::memory_order_relaxed);
    stats.bufferHits =
        state.bufferHits.load(std::memory_order_relaxed);
    stats.synchronousFills =
        state.synchronousFills.load(std::memory_order_relaxed);
    stats.partialServes =
        state.partialServes.load(std::memory_order_relaxed);
    stats.denials = state.denials.load(std::memory_order_relaxed);
    stats.bytesServed =
        state.bytesServed.load(std::memory_order_relaxed);
    stats.bytesFromBuffer =
        state.bytesFromBuffer.load(std::memory_order_relaxed);
    stats.bytesSynchronous =
        state.bytesSynchronous.load(std::memory_order_relaxed);
    stats.migrations =
        state.migrations.load(std::memory_order_relaxed);
    return stats;
}

} // namespace quac::service

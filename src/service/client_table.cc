#include "service/client_table.hh"

#include <cinttypes>
#include <cstdio>

#include "common/error.hh"

namespace quac::service
{

ClientTable::ClientTable(EntropyService &service,
                         ClientTableConfig cfg)
    : service_(service), cfg_(std::move(cfg))
{
    if (cfg_.capacity == 0)
        fatal("client table needs capacity >= 1");
    if (cfg_.perClientBytesPerSec < 0.0 ||
        cfg_.perClientBurstBytes < 0.0)
        fatal("client table pacing rates must be >= 0");
}

std::string
ClientTable::wireName(uint64_t id) const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "-%016" PRIx64, id);
    return cfg_.namePrefix + buf;
}

bool
ClientTable::parseWireName(const std::string &name,
                           uint64_t &id) const
{
    // "<prefix>-" + exactly 16 hex digits.
    size_t fixed = cfg_.namePrefix.size() + 1;
    if (name.size() != fixed + 16 ||
        name.compare(0, cfg_.namePrefix.size(), cfg_.namePrefix) !=
            0 ||
        name[cfg_.namePrefix.size()] != '-')
        return false;
    uint64_t value = 0;
    for (size_t i = fixed; i < name.size(); ++i) {
        char c = name[i];
        uint64_t digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<uint64_t>(c - 'a' + 10);
        else
            return false;
        value = (value << 4) | digit;
    }
    id = value;
    return true;
}

ClientTable::Entry *
ClientTable::install(uint64_t id, EntropyService::Client client,
                     uint64_t now_ns)
{
    if (lru_.size() >= cfg_.capacity) {
        // Evict the least-recently-seen mapping. The service-side
        // client lingers (no disconnect API); the wire state —
        // nonce window, pacing tokens — is forgotten with the
        // entry, which is the bounded table's documented trade.
        byId_.erase(lru_.back().id);
        lru_.pop_back();
        ++stats_.evictions;
    }
    TokenBucket bucket(cfg_.perClientBytesPerSec,
                       cfg_.perClientBurstBytes);
    // Anchor the bucket clock at install so the first refill spans
    // elapsed service time, not time since the epoch.
    bucket.tryTake(0.0, now_ns);
    lru_.emplace_front(id, std::move(client), bucket);
    byId_[id] = lru_.begin();
    ++stats_.inserts;
    return &lru_.front();
}

ClientTable::Acquire
ClientTable::acquire(uint64_t id, Priority priority, uint64_t now_ns)
{
    ++stats_.lookups;
    Acquire result;

    auto it = byId_.find(id);
    if (it != byId_.end()) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second); // touch
        result.status = AcquireStatus::Existing;
        result.entry = &*it->second;
        return result;
    }

    auto adopted = adopted_.find(id);
    if (adopted != adopted_.end()) {
        // The admission queue released this connect earlier;
        // complete the mapping now that the client came back.
        result.status = AcquireStatus::Created;
        result.entry =
            install(id, std::move(adopted->second), now_ns);
        adopted_.erase(adopted);
        return result;
    }

    if (queuedIds_.count(id) != 0) {
        // Still parked in the service queue: do not admit() again —
        // a retry storm must not multiply queue entries.
        result.status = AcquireStatus::Queued;
        return result;
    }

    EntropyService::AdmissionOutcome outcome =
        service_.admit(wireName(id), priority);
    switch (outcome.decision) {
    case AdmissionDecision::Admitted:
        result.status = AcquireStatus::Created;
        result.entry = install(id, *outcome.client, now_ns);
        return result;
    case AdmissionDecision::Queued:
        queuedIds_.insert(id);
        ++stats_.queued;
        result.status = AcquireStatus::Queued;
        return result;
    case AdmissionDecision::Denied:
        ++stats_.denied;
        result.status = AcquireStatus::Denied;
        return result;
    }
    fatal("unreachable admission decision");
}

ClientTable::NonceCheck
ClientTable::checkNonce(Entry &entry, uint64_t nonce)
{
    ++entry.requests;
    if (entry.seenNonce && nonce <= entry.lastNonce) {
        ++entry.replays;
        ++stats_.replays;
        return NonceCheck::Replay;
    }
    NonceCheck verdict = NonceCheck::Fresh;
    if (entry.seenNonce && nonce > entry.lastNonce + 1) {
        uint64_t missing = nonce - entry.lastNonce - 1;
        ++entry.nonceGaps;
        entry.missingSeqs += missing;
        ++stats_.nonceGaps;
        stats_.missingSeqs += missing;
        verdict = NonceCheck::Gap;
    }
    entry.lastNonce = nonce;
    entry.seenNonce = true;
    return verdict;
}

size_t
ClientTable::pump()
{
    size_t adopted = 0;
    for (EntropyService::Client &client : service_.admissionTick()) {
        uint64_t id = 0;
        if (!parseWireName(client.name(), id)) {
            // Not one of ours: someone else queued a connect on the
            // same service. The handle is counted and dropped — the
            // client stays connected service-side, but this table
            // cannot route datagrams to it.
            ++stats_.foreignAdoptions;
            continue;
        }
        queuedIds_.erase(id);
        adopted_.insert_or_assign(id, client);
        ++stats_.adopted;
        ++adopted;
    }
    return adopted;
}

} // namespace quac::service

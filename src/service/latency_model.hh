/**
 * @file
 * Modelled end-to-end request latency for the entropy service.
 *
 * DR-STRaNGe (Bostanci et al., HPCA 2022) reports that what an
 * application observes from a DRAM TRNG is its RNG *request latency*
 * under contention, not the generator's aggregate throughput. The
 * service therefore models a request queue in simulated channel
 * time: requests carry an arrival timestamp, buffer hits cost the
 * controller-SRAM read, misses additionally occupy the shard's
 * backend for the synchronous fill (queueing later arrivals behind
 * it), and each completed request's end-to-end latency is recorded
 * into a per-priority-class distribution (p50/p95/p99).
 */

#ifndef QUAC_SERVICE_LATENCY_MODEL_HH
#define QUAC_SERVICE_LATENCY_MODEL_HH

#include <cstddef>
#include <vector>

namespace quac::service
{

/** Latency-model parameters, in simulated nanoseconds. */
struct LatencyModelConfig
{
    /** Controller-SRAM read + response for a buffered request. */
    double hitNs = 20.0;
    /** Fixed per-request arbitration/bookkeeping overhead. */
    double perRequestNs = 5.0;
    /**
     * Synchronous-generation cost per missing byte. The refill
     * schedulers overwrite this with the BusScheduler-measured
     * channel rate (sched::RefillCost::nsPerByte) when
     * installLatencyCost is set; the default approximates one
     * DDR4-2400 4-bank QUAC channel.
     */
    double missNsPerByte = 2.0;
};

/**
 * An online latency distribution: collects samples and answers
 * percentile queries (nearest-rank on the sorted samples).
 */
class LatencyDistribution
{
  public:
    void add(double latency_ns);
    void merge(const LatencyDistribution &other);

    size_t count() const { return samples_.size(); }
    double meanNs() const;
    double maxNs() const;

    /** Nearest-rank percentile; @p q in (0, 1]. 0 when empty. */
    double percentileNs(double q) const;

    double p50Ns() const { return percentileNs(0.50); }
    double p95Ns() const { return percentileNs(0.95); }
    double p99Ns() const { return percentileNs(0.99); }

  private:
    /** Sorted lazily by percentileNs; add() marks dirty. */
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
    double sum_ = 0.0;
    double max_ = 0.0;
};

} // namespace quac::service

#endif // QUAC_SERVICE_LATENCY_MODEL_HH

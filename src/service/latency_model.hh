/**
 * @file
 * Modelled end-to-end request latency for the entropy service.
 *
 * DR-STRaNGe (Bostanci et al., HPCA 2022) reports that what an
 * application observes from a DRAM TRNG is its RNG *request latency*
 * under contention, not the generator's aggregate throughput. The
 * service therefore models a request queue in simulated channel
 * time: requests carry an arrival timestamp, buffer hits cost the
 * controller-SRAM read, misses additionally occupy the shard's
 * backend for the synchronous fill (queueing later arrivals behind
 * it), and each completed request's end-to-end latency is recorded
 * into a per-priority-class distribution (p50/p95/p99).
 */

#ifndef QUAC_SERVICE_LATENCY_MODEL_HH
#define QUAC_SERVICE_LATENCY_MODEL_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/thread_annotations.hh"

namespace quac::service
{

/** Latency-model parameters, in simulated nanoseconds. */
struct LatencyModelConfig
{
    /** Controller-SRAM read + response for a buffered request. */
    double hitNs = 20.0;
    /** Fixed per-request arbitration/bookkeeping overhead. */
    double perRequestNs = 5.0;
    /**
     * Synchronous-generation cost per missing byte. The refill
     * schedulers overwrite this with the BusScheduler-measured
     * channel rate (sched::RefillCost::nsPerByte) when
     * installLatencyCost is set; the default approximates one
     * DDR4-2400 4-bank QUAC channel.
     */
    double missNsPerByte = 2.0;
};

/**
 * An online latency distribution: collects samples and answers
 * percentile queries (nearest-rank on the sorted samples).
 *
 * Thread-safe: add()/merge() may race with percentile queries (the
 * auto-refill thread and concurrent clients record latencies while
 * stats are read); every member serializes on an internal mutex, and
 * the lazy percentile sort happens under it.
 */
class LatencyDistribution
{
  public:
    LatencyDistribution() = default;
    LatencyDistribution(const LatencyDistribution &other);
    LatencyDistribution &operator=(const LatencyDistribution &other);

    void add(double latency_ns);
    void merge(const LatencyDistribution &other);

    size_t count() const;
    double meanNs() const;
    double maxNs() const;

    /** Nearest-rank percentile; @p q in (0, 1]. 0 when empty. */
    double percentileNs(double q) const;

    double p50Ns() const { return percentileNs(0.50); }
    double p95Ns() const { return percentileNs(0.95); }
    double p99Ns() const { return percentileNs(0.99); }

  private:
    /** Guards every member below. Cross-object operations (copy,
     * assign, merge) snapshot the source under its own lock and then
     * apply under ours, so at most one LatencyDistribution mutex is
     * ever held at a time. */
    mutable Mutex mutex_;
    /** Sorted lazily by percentileNs; add() marks dirty. */
    mutable std::vector<double> samples_ QUAC_GUARDED_BY(mutex_);
    mutable bool sorted_ QUAC_GUARDED_BY(mutex_) = true;
    double sum_ QUAC_GUARDED_BY(mutex_) = 0.0;
    double max_ QUAC_GUARDED_BY(mutex_) = 0.0;
};

/**
 * A fixed-capacity ring of the most recent latency samples: the
 * "what has this shard done for its clients lately" signal the
 * placement policy and SLO-driven migration consume. Percentiles are
 * nearest-rank over the window only, so old congestion ages out once
 * a shard recovers.
 *
 * Lock-free: the service's lock-free data plane records hit
 * latencies without taking the shard mutex, so adds, clears, and
 * percentile queries may all race. Every slot and cursor is a
 * relaxed atomic — a racing reader sees a well-defined (if
 * momentarily stale) window, never undefined behaviour, which is
 * exactly the contract a load-balancing *signal* needs.
 */
class RecentLatencyWindow
{
  public:
    explicit RecentLatencyWindow(size_t capacity = 128);
    RecentLatencyWindow(const RecentLatencyWindow &other);
    RecentLatencyWindow &operator=(const RecentLatencyWindow &other);

    void add(double latency_ns);
    void clear();

    /** Samples currently in the window (<= capacity). */
    size_t count() const;
    size_t capacity() const { return ring_.size(); }

    /** Nearest-rank percentile over the window; 0 when empty. */
    double percentileNs(double q) const;
    double p95Ns() const { return percentileNs(0.95); }
    double p99Ns() const { return percentileNs(0.99); }

  private:
    /** Slot values, written with relaxed stores by add(). */
    std::vector<std::atomic<double>> ring_;
    /** Monotonic count of samples ever added; a sample lands in
     * slot (next % capacity). */
    std::atomic<uint64_t> next_{0};
    /** clear() raises the base to next_: the live window is the
     * samples in (base_, next_], capped at the ring size. */
    std::atomic<uint64_t> base_{0};
};

} // namespace quac::service

#endif // QUAC_SERVICE_LATENCY_MODEL_HH

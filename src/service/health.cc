#include "service/health.hh"

#include <algorithm>

#include "common/error.hh"

namespace quac::service
{

const char *
bankStateName(BankState state)
{
    switch (state) {
    case BankState::Healthy: return "healthy";
    case BankState::Probation: return "probation";
    case BankState::Quarantined: return "quarantined";
    case BankState::Flagged: return "flagged";
    }
    return "?";
}

const char *
healthEventKindName(HealthEvent::Kind kind)
{
    switch (kind) {
    case HealthEvent::Kind::Quarantine: return "quarantine";
    case HealthEvent::Kind::Flag: return "flag";
    case HealthEvent::Kind::Probation: return "probation";
    case HealthEvent::Kind::Readmit: return "readmit";
    }
    return "?";
}

HealthMonitor::HealthMonitor(size_t banks, HealthConfig cfg)
    : cfg_(cfg)
{
    if (banks == 0)
        fatal("health monitor needs at least one bank");
    if (cfg_.pValueCutoff < 0.0 || cfg_.pValueCutoff >= 1.0)
        fatal("health p-value cutoff must be in [0, 1), got %f",
              cfg_.pValueCutoff);
    if (cfg_.failWindowLimit == 0)
        fatal("health fail-window limit must be >= 1");
    if (cfg_.probationWindows == 0)
        fatal("health probation window count must be >= 1");
    if (cfg_.readFailureLimit == 0)
        fatal("health read-failure limit must be >= 1");

    nist::StreamingHealthConfig tester_cfg;
    tester_cfg.windowBits = cfg_.windowBits;
    tester_cfg.entropyPerBit = cfg_.entropyPerBit;
    tester_cfg.alphaExponent = cfg_.alphaExponent;

    // The tester constructor validates windowBits/entropy/alpha and
    // computes the cutoffs; construct one per bank.
    bankCount_ = banks;
    perBank_.reserve(banks);
    for (size_t b = 0; b < banks; ++b)
        perBank_.emplace_back(tester_cfg);
    rctCutoff_ = perBank_.front().tester.rctLimit();
    aptCutoff_ = perBank_.front().tester.aptLimit();
}

size_t
HealthMonitor::servableCountLocked() const
{
    size_t count = 0;
    for (const Bank &bank : perBank_) {
        BankState s = bank.score.state;
        count += s == BankState::Healthy || s == BankState::Flagged;
    }
    return count;
}

void
HealthMonitor::recordLocked(HealthEvent::Kind kind, size_t bank,
                            const Bank &state, double min_p,
                            std::string reason)
{
    HealthEvent event;
    event.kind = kind;
    event.bank = bank;
    event.window = state.score.windowsTested;
    event.minP = min_p;
    event.reason = std::move(reason);
    events_.push_back(std::move(event));
}

void
HealthMonitor::quarantineLocked(size_t bank, Bank &state,
                                double min_p,
                                const std::string &reason)
{
    state.score.consecutiveFailed = 0;
    state.score.consecutiveClean = 0;
    // The last servable bank is never quarantined: losing it would
    // leave the service with no entropy source at all, which is
    // worse than serving flagged bytes the caller can see are
    // suspect. It degrades to Flagged and keeps serving.
    bool last = servableCountLocked() <= 1 &&
                (state.score.state == BankState::Healthy ||
                 state.score.state == BankState::Flagged);
    if (last) {
        if (state.score.state != BankState::Flagged) {
            state.score.state = BankState::Flagged;
            recordLocked(HealthEvent::Kind::Flag, bank, state, min_p,
                         reason + " (last servable bank)");
        }
        return;
    }
    state.score.state = BankState::Quarantined;
    ++state.score.quarantines;
    ++totalQuarantines_;
    recordLocked(HealthEvent::Kind::Quarantine, bank, state, min_p,
                 reason);
}

void
HealthMonitor::windowFailedLocked(size_t bank, Bank &state,
                                  double min_p)
{
    BankScore &score = state.score;
    ++score.windowsFailed;
    ++score.consecutiveFailed;
    score.consecutiveClean = 0;

    switch (score.state) {
    case BankState::Healthy:
        if (score.consecutiveFailed >= cfg_.failWindowLimit)
            quarantineLocked(bank, state, min_p, "failing windows");
        break;
    case BankState::Flagged:
        // Still failing: quarantine the moment an alternative
        // exists (another bank re-admitted or recovered).
        quarantineLocked(bank, state, min_p,
                         "flagged bank still failing");
        break;
    case BankState::Probation:
        score.state = BankState::Quarantined;
        ++score.quarantines;
        ++totalQuarantines_;
        recordLocked(HealthEvent::Kind::Quarantine, bank, state,
                     min_p, "probation window failed");
        break;
    case BankState::Quarantined:
        break;
    }
}

void
HealthMonitor::windowCleanLocked(size_t bank, Bank &state)
{
    BankScore &score = state.score;
    score.consecutiveFailed = 0;
    ++score.consecutiveClean;

    switch (score.state) {
    case BankState::Healthy:
        break;
    case BankState::Quarantined:
        score.state = BankState::Probation;
        recordLocked(HealthEvent::Kind::Probation, bank, state,
                     score.lastMinP, "first clean window");
        break;
    case BankState::Probation:
    case BankState::Flagged:
        if (score.consecutiveClean >= cfg_.probationWindows) {
            score.state = BankState::Healthy;
            ++score.readmissions;
            ++totalReadmissions_;
            recordLocked(HealthEvent::Kind::Readmit, bank, state,
                         score.lastMinP,
                         "consecutive clean windows");
        }
        break;
    }
}

bool
HealthMonitor::observe(size_t bank, const uint8_t *bytes, size_t len)
{
    QUAC_ASSERT(bank < bankCount_, "bank=%zu", bank);
    MutexLock lock(mutex_);
    Bank &state = perBank_[bank];
    // A successful read clears the consecutive-failure streak.
    state.score.consecutiveReadFailures = 0;

    size_t events_before = events_.size();
    completed_.clear();
    state.tester.consume(bytes, len, completed_);
    for (const nist::HealthWindowResult &window : completed_) {
        BankScore &score = state.score;
        ++score.windowsTested;
        double min_p = window.minP();
        score.lastMinP = min_p;
        score.maxRun = std::max(score.maxRun, window.maxRun);
        score.maxAptCount =
            std::max(score.maxAptCount, window.maxAptCount);
        bool failed = window.rctFailed || window.aptFailed ||
                      min_p < cfg_.pValueCutoff;
        if (failed)
            windowFailedLocked(bank, state, min_p);
        else
            windowCleanLocked(bank, state);
    }
    return events_.size() != events_before;
}

bool
HealthMonitor::reportReadFailure(size_t bank)
{
    QUAC_ASSERT(bank < bankCount_, "bank=%zu", bank);
    MutexLock lock(mutex_);
    Bank &state = perBank_[bank];
    BankScore &score = state.score;
    ++score.readFailures;
    ++score.consecutiveReadFailures;
    score.consecutiveClean = 0;

    size_t events_before = events_.size();
    switch (score.state) {
    case BankState::Healthy:
    case BankState::Flagged:
        if (score.consecutiveReadFailures >= cfg_.readFailureLimit)
            quarantineLocked(bank, state, 1.0, "read failures");
        break;
    case BankState::Probation:
        // A probation draw failed outright: back to quarantine.
        score.state = BankState::Quarantined;
        ++score.quarantines;
        ++totalQuarantines_;
        recordLocked(HealthEvent::Kind::Quarantine, bank, state, 1.0,
                     "read failure during probation");
        break;
    case BankState::Quarantined:
        break;
    }
    return events_.size() != events_before;
}

bool
HealthMonitor::servable(size_t bank) const
{
    QUAC_ASSERT(bank < bankCount_, "bank=%zu", bank);
    MutexLock lock(mutex_);
    BankState s = perBank_[bank].score.state;
    return s == BankState::Healthy || s == BankState::Flagged;
}

size_t
HealthMonitor::servableCount() const
{
    MutexLock lock(mutex_);
    return servableCountLocked();
}

BankState
HealthMonitor::state(size_t bank) const
{
    QUAC_ASSERT(bank < bankCount_, "bank=%zu", bank);
    MutexLock lock(mutex_);
    return perBank_[bank].score.state;
}

BankScore
HealthMonitor::score(size_t bank) const
{
    QUAC_ASSERT(bank < bankCount_, "bank=%zu", bank);
    MutexLock lock(mutex_);
    return perBank_[bank].score;
}

std::vector<BankScore>
HealthMonitor::scores() const
{
    MutexLock lock(mutex_);
    std::vector<BankScore> out;
    out.reserve(perBank_.size());
    for (const Bank &bank : perBank_)
        out.push_back(bank.score);
    return out;
}

std::vector<HealthEvent>
HealthMonitor::events() const
{
    MutexLock lock(mutex_);
    return events_;
}

uint64_t
HealthMonitor::quarantines() const
{
    MutexLock lock(mutex_);
    return totalQuarantines_;
}

uint64_t
HealthMonitor::readmissions() const
{
    MutexLock lock(mutex_);
    return totalReadmissions_;
}

} // namespace quac::service

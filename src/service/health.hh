/**
 * @file
 * Streaming health monitor for the entropy service's backend banks.
 *
 * Closes ROADMAP direction 2 (and the failure half of direction 5):
 * a deployed QUAC-TRNG without online health tests is the open gap
 * neoTRNG's authors call out, and DR-STRaNGe argues the end-to-end
 * system is what makes DRAM TRNGs usable. The monitor taps every
 * byte each backend bank produces (refill pulls, synchronous fills,
 * probation draws), runs the SP 800-90B continuous tests plus the
 * windowed monobit/serial statistics (nist/health90b.hh) per bank,
 * and drives a quarantine state machine:
 *
 *            failing windows >= failWindowLimit
 *   Healthy ------------------------------------> Quarantined
 *      ^   (or consecutive read failures            |  ^
 *      |    >= readFailureLimit)                    |  |
 *      |                                clean probation  failing
 *      |                                window      |  |  window
 *      |   probationWindows consecutive             v  |
 *      +--------------------------------------- Probation
 *
 *   Flagged: the failure condition held but quarantining would leave
 *   zero servable banks — the last bank is never quarantined; it
 *   keeps serving, marked, and recovers to Healthy through the same
 *   consecutive-clean-windows rule (or becomes Quarantined on a
 *   later failing window once another bank is servable again).
 *
 * The monitor only decides servability; the EntropyService reacts by
 * re-sourcing shards off quarantined banks and flushing their
 * buffered bytes (see entropy_service.hh). All transitions are
 * recorded as HealthEvents for stats/CLI surfacing.
 *
 * Thread safety: every public member serializes on one internal
 * mutex. Callers hold shard/backend locks while calling observe();
 * the monitor never calls back out, so its mutex is innermost.
 */

#ifndef QUAC_SERVICE_HEALTH_HH
#define QUAC_SERVICE_HEALTH_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.hh"
#include "nist/health90b.hh"

namespace quac::service
{

/** Health-monitoring parameters (EntropyServiceConfig::health). */
struct HealthConfig
{
    /** Master switch; disabled monitoring costs nothing. */
    bool enabled = false;
    /**
     * Windowed-statistic window in bits; positive multiple of 8,
     * >= 128 (the serial test's applicability floor).
     */
    size_t windowBits = 16384;
    /** Assessed min-entropy per output bit, in (0, 1]. */
    double entropyPerBit = 1.0;
    /**
     * Continuous-test false-alarm exponent a (alpha = 2^-a) for the
     * RCT/APT cutoffs. The SP 800-90B tables are usually quoted at
     * a = 20, but at bit granularity that fires on healthy data
     * every ~2^20 bits; the default a = 40 (RCT cutoff 41 at
     * H = 1.0) makes a false alarm a once-per-terabyte event.
     */
    int alphaExponent = 40;
    /**
     * A window fails when its smallest monobit/serial p-value drops
     * below this (or a continuous test fired). 1e-9 per statistic
     * keeps the per-window false-positive rate ~3e-9 while an
     * entropy-collapsed window's p-value underflows to ~0.
     */
    double pValueCutoff = 1e-9;
    /** Consecutive failing windows before quarantine. */
    uint32_t failWindowLimit = 2;
    /** Consecutive clean windows for probation re-admission. */
    uint32_t probationWindows = 4;
    /** Consecutive fill failures before quarantine. */
    uint32_t readFailureLimit = 3;
};

/** Bank health state. */
enum class BankState : uint8_t
{
    Healthy = 0,
    /** Was quarantined; producing clean windows, not yet servable. */
    Probation = 1,
    /** Not servable; shards re-sourced away. */
    Quarantined = 2,
    /** Failing but servable: the last bank is never quarantined. */
    Flagged = 3,
};

/** Display name ("healthy", "probation", "quarantined", "flagged"). */
const char *bankStateName(BankState state);

/** Per-bank health score snapshot. */
struct BankScore
{
    BankState state = BankState::Healthy;
    uint64_t windowsTested = 0;
    uint64_t windowsFailed = 0;
    uint32_t consecutiveFailed = 0;
    uint32_t consecutiveClean = 0;
    /** Smallest p-value of the most recent window. */
    double lastMinP = 1.0;
    /** Worst statistics seen over the bank's lifetime. */
    uint64_t maxRun = 0;
    uint64_t maxAptCount = 0;
    uint64_t readFailures = 0;
    uint32_t consecutiveReadFailures = 0;
    uint64_t quarantines = 0;
    uint64_t readmissions = 0;
};

/** One recorded state transition. */
struct HealthEvent
{
    enum class Kind : uint8_t
    {
        Quarantine = 0,
        Flag = 1,
        /** Quarantined bank produced its first clean window. */
        Probation = 2,
        /** Probation (or Flagged) bank re-admitted to Healthy. */
        Readmit = 3,
    };

    Kind kind = Kind::Quarantine;
    size_t bank = 0;
    /** The bank's windowsTested count when the transition fired. */
    uint64_t window = 0;
    /** Smallest p-value of the triggering window (1.0 for
     * read-failure transitions). */
    double minP = 1.0;
    std::string reason;
};

/** Display name ("quarantine", "flag", "probation", "readmit"). */
const char *healthEventKindName(HealthEvent::Kind kind);

/** The per-bank streaming health monitor. */
class HealthMonitor
{
  public:
    /**
     * @param banks backend pool size.
     * @param cfg health parameters (validated here via fatal()).
     */
    HealthMonitor(size_t banks, HealthConfig cfg);

    /**
     * Feed @p len bytes of @p bank's output stream through the
     * tests. @return true when the bank's state changed (the service
     * bumps its re-source epoch and reacts).
     */
    bool observe(size_t bank, const uint8_t *bytes, size_t len);

    /**
     * Record a fill failure on @p bank (exception from the backend).
     * @return true when the bank's state changed.
     */
    bool reportReadFailure(size_t bank);

    /** May bytes from @p bank be served? (Healthy or Flagged.) */
    bool servable(size_t bank) const;

    /** Banks currently servable. */
    size_t servableCount() const;

    BankState state(size_t bank) const;

    /** Snapshot of one bank's score. */
    BankScore score(size_t bank) const;

    /** Snapshot of every bank's score, indexed by bank. */
    std::vector<BankScore> scores() const;

    /** Every transition recorded so far, in order. */
    std::vector<HealthEvent> events() const;

    uint64_t quarantines() const;
    uint64_t readmissions() const;

    /* Latent issue surfaced by the annotation pass: this used to
     * read perBank_.size() — a mutex_-guarded container — with no
     * lock. The bank count is fixed at construction, so it lives in
     * its own immutable member instead of the guarded vector. */
    size_t banks() const { return bankCount_; }
    const HealthConfig &config() const { return cfg_; }

    /** Configured continuous-test cutoffs (stats surfacing). */
    uint64_t rctCutoff() const { return rctCutoff_; }
    uint64_t aptCutoff() const { return aptCutoff_; }

  private:
    struct Bank
    {
        nist::StreamingHealthTester tester;
        BankScore score;

        explicit Bank(const nist::StreamingHealthConfig &cfg)
            : tester(cfg)
        {
        }
    };

    /** A window failed: advance the state machine. */
    void windowFailedLocked(size_t bank, Bank &state, double min_p)
        QUAC_REQUIRES(mutex_);

    /** A window passed: advance the state machine. */
    void windowCleanLocked(size_t bank, Bank &state)
        QUAC_REQUIRES(mutex_);

    /** Quarantine or (last servable bank) flag. */
    void quarantineLocked(size_t bank, Bank &state, double min_p,
                          const std::string &reason)
        QUAC_REQUIRES(mutex_);

    /** Servable-bank count. */
    size_t servableCountLocked() const QUAC_REQUIRES(mutex_);

    void recordLocked(HealthEvent::Kind kind, size_t bank,
                      const Bank &state, double min_p,
                      std::string reason) QUAC_REQUIRES(mutex_);

    /* Set in the constructor, read-only afterwards: safe to read
     * without mutex_. */
    HealthConfig cfg_;
    size_t bankCount_ = 0;
    uint64_t rctCutoff_ = 0;
    uint64_t aptCutoff_ = 0;

    mutable Mutex mutex_;
    std::vector<Bank> perBank_ QUAC_GUARDED_BY(mutex_);
    std::vector<HealthEvent> events_ QUAC_GUARDED_BY(mutex_);
    uint64_t totalQuarantines_ QUAC_GUARDED_BY(mutex_) = 0;
    uint64_t totalReadmissions_ QUAC_GUARDED_BY(mutex_) = 0;
    /** Scratch for completed-window results (reused). */
    std::vector<nist::HealthWindowResult> completed_
        QUAC_GUARDED_BY(mutex_);
};

} // namespace quac::service

#endif // QUAC_SERVICE_HEALTH_HH

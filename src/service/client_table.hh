/**
 * @file
 * Bounded wire-client table: the network front end's adapter onto
 * the EntropyService.
 *
 * A UDP server cannot hold unbounded per-client state — an attacker
 * (or a million honest clients) would exhaust it. The table maps
 * 64-bit wire client ids onto EntropyService clients through the
 * service's existing SLO-aware admission gate, holds at most
 * `capacity` live mappings, and evicts the least-recently-seen
 * mapping when a new client arrives at capacity. Each entry carries
 * the wire-protocol per-client state the service itself has no
 * business knowing: the last sequence nonce (replay and gap
 * detection) and a token bucket (per-client pacing).
 *
 * Eviction drops the wire mapping only; the service-side client
 * state persists (the service has no disconnect), so a returning
 * evicted client re-enters through the admission gate as a fresh
 * client with a fresh nonce window. That forgetting is the bounded
 * table's deliberate trade: replay protection spans a client's
 * residency, not all time.
 *
 * Bulk connects the gate parks (AdmissionDecision::Queued) are
 * remembered by id so retries do not multiply queue entries; pump()
 * drives the service's admissionTick and adopts released connects,
 * which install on the client's next datagram. The table expects to
 * own the service's admission loop — a concurrently admitting
 * subsystem would race it for released connects.
 *
 * Single-threaded by design, like the epoll loop that owns it.
 */

#ifndef QUAC_SERVICE_CLIENT_TABLE_HH
#define QUAC_SERVICE_CLIENT_TABLE_HH

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/token_bucket.hh"
#include "service/entropy_service.hh"

namespace quac::service
{

/** Client-table parameters. */
struct ClientTableConfig
{
    /** Maximum live wire-client mappings (>= 1). */
    size_t capacity = 4096;
    /** Per-client pacing rate in payload bytes/s (0 = unpaced). */
    double perClientBytesPerSec = 0.0;
    /** Per-client bucket depth in bytes (0 = one second's rate). */
    double perClientBurstBytes = 0.0;
    /** Service client-name prefix ("<prefix>-<16-hex-digit id>"). */
    std::string namePrefix = "net";
};

/** Bounded LRU map of wire clients onto service clients. */
class ClientTable
{
  public:
    /** One live wire-client mapping. */
    struct Entry
    {
        uint64_t id = 0;
        EntropyService::Client client;
        /** Per-client pacing bucket (unlimited when unpaced). */
        TokenBucket bucket;
        /** Highest nonce seen; valid once seenNonce. */
        uint64_t lastNonce = 0;
        bool seenNonce = false;
        uint64_t requests = 0;
        /** Requests rejected as replays (nonce <= lastNonce). */
        uint64_t replays = 0;
        /** Forward nonce jumps (client-observed request loss). */
        uint64_t nonceGaps = 0;
        /** Total sequence numbers skipped across those gaps. */
        uint64_t missingSeqs = 0;

        Entry(uint64_t id_, EntropyService::Client client_,
              TokenBucket bucket_)
            : id(id_), client(client_), bucket(bucket_)
        {
        }
    };

    /** How acquire() resolved the id. */
    enum class AcquireStatus : uint8_t
    {
        /** Entry already live (LRU refreshed). */
        Existing = 0,
        /** Newly admitted and installed (possibly evicting). */
        Created = 1,
        /** Parked in the service admission queue; retry later. */
        Queued = 2,
        /** Admission denied outright (queue overflow). */
        Denied = 3,
    };

    struct Acquire
    {
        AcquireStatus status = AcquireStatus::Denied;
        /** Valid iff status is Existing or Created; owned by the
         * table and invalidated by the next acquire() (eviction). */
        Entry *entry = nullptr;
    };

    /** Nonce-sequence verdict for one request. */
    enum class NonceCheck : uint8_t
    {
        /** Next in sequence (lastNonce + 1, or the first seen). */
        Fresh = 0,
        /** Fresh but skipped ahead: earlier requests were lost. */
        Gap = 1,
        /** At or below lastNonce: duplicate or replayed datagram. */
        Replay = 2,
    };

    ClientTable(EntropyService &service, ClientTableConfig cfg);

    ClientTable(const ClientTable &) = delete;
    ClientTable &operator=(const ClientTable &) = delete;

    /**
     * Resolve @p id to a live entry, admitting through the service
     * gate on first contact. @p priority only matters for that
     * first admission — an entry's service client keeps the class
     * it connected with. @p now_ns primes the new entry's pacing
     * bucket clock.
     */
    Acquire acquire(uint64_t id, Priority priority, uint64_t now_ns);

    /**
     * Record @p nonce against @p entry: updates lastNonce and the
     * replay/gap counters, returns the verdict. Replays leave
     * lastNonce untouched; the caller must not serve them.
     */
    NonceCheck checkNonce(Entry &entry, uint64_t nonce);

    /**
     * One admission control-loop step: drives the service's
     * admissionTick and adopts connects the queue released (they
     * install on the owning client's next acquire). Returns the
     * number adopted.
     */
    size_t pump();

    /** Live mappings. */
    size_t size() const { return lru_.size(); }

    /** Aggregate counters. */
    struct Stats
    {
        uint64_t lookups = 0;
        uint64_t hits = 0;
        uint64_t inserts = 0;
        /** LRU evictions to make room at capacity. */
        uint64_t evictions = 0;
        uint64_t queued = 0;
        uint64_t denied = 0;
        /** Connects adopted from the admission queue. */
        uint64_t adopted = 0;
        /** admissionTick clients whose name was not ours (dropped;
         * see the class comment on owning the admission loop). */
        uint64_t foreignAdoptions = 0;
        uint64_t replays = 0;
        uint64_t nonceGaps = 0;
        uint64_t missingSeqs = 0;
    };

    const Stats &stats() const { return stats_; }

    /** The service-client name for a wire id. */
    std::string wireName(uint64_t id) const;

    /**
     * Parse an id back out of a wireName()-formatted name.
     * @return true on success.
     */
    bool parseWireName(const std::string &name, uint64_t &id) const;

  private:
    /** Install a mapping (evicting the LRU victim at capacity). */
    Entry *install(uint64_t id, EntropyService::Client client,
                   uint64_t now_ns);

    EntropyService &service_;
    ClientTableConfig cfg_;
    /** Front = most recently seen; back = eviction victim. */
    std::list<Entry> lru_;
    std::unordered_map<uint64_t, std::list<Entry>::iterator> byId_;
    /** Ids currently parked in the service admission queue. */
    std::unordered_set<uint64_t> queuedIds_;
    /** Released connects awaiting the client's next datagram. */
    std::unordered_map<uint64_t, EntropyService::Client> adopted_;
    Stats stats_;
};

} // namespace quac::service

#endif // QUAC_SERVICE_CLIENT_TABLE_HH

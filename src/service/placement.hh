/**
 * @file
 * Closed-loop client placement: SLO-driven migration of entropy
 * clients between shards.
 *
 * The multi-channel refill scheduler can migrate *refill assignment*
 * between channels, but a latency-critical client pinned to an
 * overloaded shard stays slow forever — DR-STRaNGe's RNG-interference
 * failure mode. The SloMigrator closes that loop at the client level:
 * each tick it reads every shard's *measured* recent latency tail
 * (EntropyService::shardRecentPercentileNs, a windowed per-shard
 * signal fed by timestamped requests) and moves managed clients off
 * shards whose p95/p99 breaches their priority class's SLO, onto the
 * least-loaded shard. Hysteresis (consecutive-breach threshold,
 * per-client cooldown, and a required improvement margin) keeps
 * clients from ping-ponging between two equally bad shards.
 *
 * Migration never changes any shard's output bytes: each shard keeps
 * draining its own backend stream in request order; only which
 * stream a migrated client reads changes.
 */

#ifndef QUAC_SERVICE_PLACEMENT_HH
#define QUAC_SERVICE_PLACEMENT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "service/entropy_service.hh"

namespace quac::service
{

/** Latency SLO for one priority class; 0 disables a bound. */
struct SloTarget
{
    double p95Ns = 0.0;
    double p99Ns = 0.0;

    bool active() const { return p95Ns > 0.0 || p99Ns > 0.0; }
};

/** SLO-driven migration parameters. */
struct SloMigratorConfig
{
    /** Per-priority targets, indexed by Priority (interactive,
     * standard, bulk). Default: no class is managed. */
    std::array<SloTarget, 3> slo;
    /**
     * A client's shard must breach the SLO on this many consecutive
     * evaluations before the client migrates (one transiently slow
     * tick is not a reason to move).
     */
    uint32_t breachTicks = 2;
    /**
     * Evaluations a migrated client sits out before it may migrate
     * again — the window needs time to reflect the new shard, and
     * the cooldown bounds per-client churn even when every shard
     * breaches.
     */
    uint32_t cooldownTicks = 8;
    /**
     * The destination's load must be below the source's load times
     * this factor, so clients never hop between two equally bad
     * shards (the other half of the anti-ping-pong hysteresis).
     */
    double improvementFactor = 0.7;
    /** Cap on migrations per tick() across all managed clients
     * (prevents a stampede onto one momentarily idle shard). */
    size_t maxMigrationsPerTick = 1;
};

/** One migration performed by the migrator (for studies/logs). */
struct MigrationEvent
{
    std::string client;
    size_t fromShard = 0;
    size_t toShard = 0;
    uint64_t tick = 0;
};

/**
 * The closed-loop client migrator over one EntropyService. Register
 * the clients whose placement it may manage, then call tick() once
 * per control interval (typically right after the refill scheduler's
 * tick, with the same cadence).
 *
 * Thread contract: confined to the single control thread that calls
 * tick(), like MultiChannelRefillScheduler. The shard-latency
 * snapshots it reads and the migrations it performs go through the
 * EntropyService's annotated mutexes; the migrator itself holds no
 * locks, so it must never be ticked from two threads.
 */
class SloMigrator
{
  public:
    explicit SloMigrator(EntropyService &service,
                         SloMigratorConfig cfg = {});

    /** Put @p client under management (its priority picks the SLO). */
    void manage(EntropyService::Client client);

    /**
     * One evaluation: read every shard's recent latency tail, accrue
     * breaches, migrate clients whose breach count and cooldown
     * allow it and for which a meaningfully better shard exists.
     * @return migrations performed this tick.
     */
    size_t tick();

    /** Total migrations across all ticks. */
    uint64_t migrations() const { return migrations_; }

    /** Every migration performed, in order. */
    const std::vector<MigrationEvent> &events() const
    {
        return events_;
    }

    size_t managedClients() const { return managed_.size(); }

  private:
    struct Managed
    {
        EntropyService::Client client;
        uint32_t breach = 0;
        /** Tick index before which this client may not migrate. */
        uint64_t cooldownUntil = 0;
    };

    EntropyService &service_;
    SloMigratorConfig cfg_;
    std::vector<Managed> managed_;
    uint64_t tickIndex_ = 0;
    uint64_t migrations_ = 0;
    std::vector<MigrationEvent> events_;
};

} // namespace quac::service

#endif // QUAC_SERVICE_PLACEMENT_HH

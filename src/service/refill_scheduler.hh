/**
 * @file
 * Scheduler-aware asynchronous refill for the entropy service, at
 * memory-system scale.
 *
 * The memory controller tops the service's shard buffers up with
 * idle DRAM bandwidth (paper Section 9). This component models that
 * loop per channel: a ShardPlacement assigns disjoint shard sets to
 * the channels of a sched::ChannelTopology, and each tick every
 * channel measures its shards' chunk-rounded refill demand, converts
 * it to channel time using the BusScheduler-simulated cost of one
 * QUAC iteration on that channel (sched::quacRefillCost), arbitrates
 * that time against the channel's own co-running demand traffic
 * under a DR-STRaNGe fairness policy (sysperf::grantRefill), and
 * issues the granted bytes to its shards as a budgeted refill.
 * Channels may run heterogeneous workloads and timings; a shard
 * whose channel persistently starves it can be migrated to a channel
 * with headroom (rebalancing), which never changes the shard's
 * output bytes — a shard always drains its own backend stream, the
 * placement only decides whose granted time pays for the refill.
 */

#ifndef QUAC_SERVICE_REFILL_SCHEDULER_HH
#define QUAC_SERVICE_REFILL_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "dram/timing.hh"
#include "sched/channel_topology.hh"
#include "sched/trng_programs.hh"
#include "service/entropy_service.hh"
#include "sysperf/channel_sim.hh"
#include "sysperf/workloads.hh"

namespace quac::service
{

/** Disjoint shard -> channel assignment. */
struct ShardPlacement
{
    /** channelOfShard[s] = channel refilling shard s. */
    std::vector<size_t> channelOfShard;

    /** Shard s on channel s % channels. */
    static ShardPlacement roundRobin(size_t shards, size_t channels);

    /** The shard sets per channel (disjoint by construction). */
    std::vector<std::vector<size_t>> byChannel(size_t channels) const;

    size_t shards() const { return channelOfShard.size(); }
};

/** What accrues a shard's starved ticks (rebalancer input). */
enum class RebalanceTrigger : uint8_t
{
    /** Channel granted less than starveGrantRatio of the need and
     * the shard is still below the watermark (open-loop signal). */
    GrantRatio = 0,
    /**
     * The shard's *measured* recent p95 request latency breaches
     * rebalanceSloNs while the shard still has refill demand — the
     * closed-loop signal: what clients actually experienced drives
     * the migration, not the grant bookkeeping.
     */
    ShardLatency = 1,
};

/** Display name ("grant-ratio", "shard-latency"). */
const char *rebalanceTriggerName(RebalanceTrigger trigger);

/** Multi-channel refill-loop configuration. */
struct MultiChannelRefillConfig
{
    /** Channel shape and per-channel timing. */
    sched::ChannelTopology topology;
    /** RNG-vs-memory arbitration policy (all channels unless
     * channelPolicies overrides). */
    sysperf::FairnessPolicy policy =
        sysperf::FairnessPolicy::BufferedFair;
    /**
     * Per-channel arbitration override: channel c arbitrates its
     * refill under channelPolicies[c] (e.g. one rng-priority channel
     * dedicated to latency-critical shards while the rest run fcfs).
     * Empty broadcasts `policy`; otherwise the size must equal
     * topology.channels.
     */
    std::vector<sysperf::FairnessPolicy> channelPolicies;
    /** Channel-time window modelled per tick, in ns. */
    double tickNs = 1.0e5;
    /** Idle re-entry overhead per gap (see sysperf::injectQuac). */
    double reentryOverheadNs = 20.0;
    /** Seed of the per-tick demand-traffic timelines. */
    uint64_t seed = 1;
    /** Refill command program (iteration-cost probe input). */
    sched::QuacScheduleConfig schedule;
    /**
     * Enable starvation-driven rebalancing: a shard accruing
     * starveTickThreshold consecutive starved ticks (per `trigger`)
     * migrates to the channel with the most idle headroom this tick
     * — provided that channel is itself healthy (it granted at least
     * starveGrantRatio of its own shards' need) and the shard's
     * migration cooldown has expired, so two saturated channels
     * never trade shards back and forth.
     */
    bool rebalance = false;
    double starveGrantRatio = 0.5;
    uint32_t starveTickThreshold = 4;
    /** Starvation signal the rebalancer acts on. */
    RebalanceTrigger trigger = RebalanceTrigger::GrantRatio;
    /** ShardLatency trigger: recent shard p95 above this (with
     * demand outstanding) counts one starved tick. */
    double rebalanceSloNs = 2000.0;
    /** Ticks a migrated shard sits out before it may move again. */
    uint32_t migrateCooldownTicks = 8;
    /**
     * Install the channel-0 refill cost as the service's modelled
     * synchronous-fill rate (EntropyService latency model).
     */
    bool installLatencyCost = false;
    /**
     * SLO-driven policy escalation: while any of a channel's shards
     * measurably breaches escalateSloNs (recent p95, with refill
     * demand outstanding), the channel arbitrates its refill under
     * rng-priority instead of its configured policy — buffer refill
     * preempts demand traffic exactly while clients are hurting —
     * and reverts the moment the breach clears. The closed-loop
     * "drive channelPolicies from SLO state" control.
     */
    bool sloEscalation = false;
    /** Recent shard p95 above this escalates the channel, in ns. */
    double escalateSloNs = 2000.0;
};

/** Accounting of the refill loop, per tick and accumulated. */
struct RefillAccounting
{
    uint64_t ticks = 0;
    /** Channel time modelled (ticks x tickNs x channels). */
    double modeledNs = 0.0;
    /** Channel time the shards' demand asked for. */
    double neededNs = 0.0;
    /** Channel time granted under the fairness policy. */
    double grantedNs = 0.0;
    /** Idle time that was usable for FCFS-style refill. */
    double usableIdleNs = 0.0;
    /** Demand-traffic time displaced by prioritized refill. */
    double stolenBusyNs = 0.0;
    /** Demand-traffic busy time in the modelled windows. */
    double busyNs = 0.0;
    /** Bytes the shards wanted / actually pulled. */
    uint64_t bytesRequested = 0;
    uint64_t bytesRefilled = 0;

    /** Fractional slowdown charged to regular memory traffic. */
    double
    memSlowdown() const
    {
        return busyNs > 0.0 ? stolenBusyNs / busyNs : 0.0;
    }

    /** Refill throughput over the modelled time, in Gb/s. */
    double
    refillGbps() const
    {
        return modeledNs > 0.0
                   ? static_cast<double>(bytesRefilled) * 8.0 /
                         modeledNs
                   : 0.0;
    }

    /** Accumulate @p tick into this total. */
    void accumulate(const RefillAccounting &tick);
};

/**
 * The per-channel refill scheduler pool driving one service.
 *
 * Thread contract: confined to the single control thread that calls
 * tick() — it holds no locks of its own, and the thread-safety
 * analysis has no capability for thread confinement, so the contract
 * is this comment plus the lint ban on raw mutexes here. All real
 * concurrency flows through the EntropyService's annotated mutexes
 * when tick() calls into it.
 */
class MultiChannelRefillScheduler
{
  public:
    /**
     * @param service service to top up (kept by reference).
     * @param per_channel_demand co-running memory-traffic profile of
     *        each channel. One entry is broadcast to every channel;
     *        otherwise the size must equal topology.channels.
     * @param cfg refill-loop parameters.
     * @param placement shard -> channel map; empty = round-robin.
     */
    MultiChannelRefillScheduler(
        EntropyService &service,
        std::vector<sysperf::WorkloadProfile> per_channel_demand,
        MultiChannelRefillConfig cfg = {},
        ShardPlacement placement = {});

    /**
     * Run one tick on every channel: measure each channel's shards'
     * demand, arbitrate against that channel's traffic, refill.
     * Returns the tick's accounting aggregated across channels (also
     * accumulated into total() and per-channel channelTotal()).
     */
    RefillAccounting tick();

    /** Run @p n ticks; returns the accumulated total. */
    const RefillAccounting &run(uint64_t n);

    const RefillAccounting &total() const { return total_; }

    /** Accumulated accounting of one channel. */
    const RefillAccounting &channelTotal(size_t channel) const;

    /** BusScheduler-measured refill cost on @p channel. */
    const sched::RefillCost &iterationCost(size_t channel = 0) const;

    /** Current shard -> channel placement (rebalancing mutates it). */
    const ShardPlacement &placement() const { return placement_; }

    /** Consecutive starved ticks currently charged to @p shard. */
    uint32_t starvedTicks(size_t shard) const;

    /** Shard migrations performed by the rebalancer. */
    uint64_t migrations() const { return migrations_; }

    size_t channels() const { return costs_.size(); }

    /** Fairness policy channel @p channel arbitrates under (the
     * escalated policy while channelEscalated(channel)). */
    sysperf::FairnessPolicy channelPolicy(size_t channel) const;

    /** @name Channel failure and recovery (scenario campaigns) */
    /**@{*/
    /**
     * Take @p channel out of service: it grants nothing and refills
     * nothing until recoverChannel(). Its shards re-place onto the
     * servable channel currently refilling the fewest shards
     * (ascending tie-break, deterministic) and remember this channel
     * as their failover home. Placement only redirects whose granted
     * time pays for a refill — every shard keeps draining its own
     * backend stream, so the byte-exact replay invariant holds
     * through the outage. With no servable channel left the shards
     * stay put and starve visibly (starvedTicks). Idempotent.
     */
    void failChannel(size_t channel);

    /**
     * Return @p channel to service. Shards displaced *by its
     * failure* (not by the rebalancer) return home, with a migration
     * cooldown so the rebalancer does not immediately bounce them.
     * Idempotent.
     */
    void recoverChannel(size_t channel);

    bool channelFailed(size_t channel) const;
    size_t failedChannelCount() const;
    /** Shard re-placements forced by failChannel. */
    uint64_t failovers() const { return failovers_; }
    /** Failure-displaced shards returned home by recoverChannel. */
    uint64_t failbacks() const { return failbacks_; }
    /**@}*/

    /** Is @p channel currently escalated to rng-priority? */
    bool channelEscalated(size_t channel) const;

    /** Channel-ticks spent escalated (sloEscalation). */
    uint64_t escalatedTicks() const { return escalatedTicks_; }

  private:
    void rebalanceAfterTick(const std::vector<double> &grant_ratio,
                            const std::vector<double> &headroom_ns);

    /** Escalation probe: does any shard of @p channel breach the
     * escalation SLO with demand outstanding? */
    bool channelBreaching(size_t channel);

    /** One starved tick for @p shard per cfg_.trigger? */
    bool shardStarvedThisTick(size_t shard,
                              const std::vector<double> &grant_ratio);

    EntropyService &service_;
    std::vector<sysperf::WorkloadProfile> demand_;
    MultiChannelRefillConfig cfg_;
    std::vector<sysperf::FairnessPolicy> policies_;
    std::vector<sched::RefillCost> costs_;
    ShardPlacement placement_;
    std::vector<std::vector<size_t>> shardsOf_;
    std::vector<uint32_t> starved_;
    /** Tick index before which a shard may not migrate again. */
    std::vector<uint64_t> cooldownUntil_;
    std::vector<RefillAccounting> channelTotals_;
    RefillAccounting total_;
    uint64_t tickIndex_ = 0;
    uint64_t migrations_ = 0;

    /** Channels currently failed (failChannel). */
    std::vector<uint8_t> channelDown_;
    /** Failure home of a displaced shard; npos_ while at home (or
     * displaced only by the rebalancer). */
    std::vector<size_t> failoverHome_;
    /** Channels escalated to rng-priority this tick. */
    std::vector<uint8_t> escalated_;
    uint64_t failovers_ = 0;
    uint64_t failbacks_ = 0;
    uint64_t escalatedTicks_ = 0;

    static constexpr size_t npos_ = ~size_t{0};
};

/** Single-channel refill-loop configuration (legacy front-end). */
struct RefillSchedulerConfig
{
    /** RNG-vs-memory arbitration policy. */
    sysperf::FairnessPolicy policy =
        sysperf::FairnessPolicy::BufferedFair;
    /** Channel-time window modelled per tick, in ns. */
    double tickNs = 1.0e5;
    /** Idle re-entry overhead per gap (see sysperf::injectQuac). */
    double reentryOverheadNs = 20.0;
    /** Seed of the per-tick demand-traffic timelines. */
    uint64_t seed = 1;
    /** Channel timing the refill commands are scheduled against. */
    dram::TimingParams timing = dram::TimingParams::ddr4(2400);
    /** Refill command program (iteration-cost probe input). */
    sched::QuacScheduleConfig schedule;
};

/**
 * The single-channel refill loop driving one EntropyService: a thin
 * front-end over MultiChannelRefillScheduler with a one-channel
 * topology, preserving the original API and tick-for-tick behaviour.
 */
class RefillScheduler
{
  public:
    /**
     * @param service service to top up (kept by reference).
     * @param demand co-running memory-traffic profile.
     * @param cfg refill-loop parameters.
     */
    RefillScheduler(EntropyService &service,
                    const sysperf::WorkloadProfile &demand,
                    RefillSchedulerConfig cfg = {});

    /**
     * Run one tick: measure demand, arbitrate, refill. Returns the
     * tick's accounting (also accumulated into total()).
     */
    RefillAccounting tick() { return pool_.tick(); }

    /** Run @p n ticks; returns the accumulated total. */
    const RefillAccounting &run(uint64_t n) { return pool_.run(n); }

    const RefillAccounting &total() const { return pool_.total(); }

    /** BusScheduler-measured refill iteration cost. */
    const sched::RefillCost &iterationCost() const
    {
        return pool_.iterationCost(0);
    }

  private:
    MultiChannelRefillScheduler pool_;
};

} // namespace quac::service

#endif // QUAC_SERVICE_REFILL_SCHEDULER_HH

/**
 * @file
 * Scheduler-aware asynchronous refill for the entropy service.
 *
 * The memory controller tops the service's shard buffers up with
 * idle DRAM bandwidth (paper Section 9). This component models that
 * loop at channel granularity: each tick it measures the service's
 * chunk-rounded refill demand, converts it to channel time using the
 * BusScheduler-simulated cost of one QUAC iteration
 * (sched::quacRefillCost), arbitrates that time against a workload's
 * demand traffic under a DR-STRaNGe fairness policy
 * (sysperf::grantRefill), and issues the granted bytes to the
 * service as a budgeted refill. Memory-traffic slowdown and idle
 * utilization are accounted per tick and in total.
 */

#ifndef QUAC_SERVICE_REFILL_SCHEDULER_HH
#define QUAC_SERVICE_REFILL_SCHEDULER_HH

#include <cstdint>

#include "dram/timing.hh"
#include "sched/trng_programs.hh"
#include "service/entropy_service.hh"
#include "sysperf/channel_sim.hh"
#include "sysperf/workloads.hh"

namespace quac::service
{

/** Refill-loop configuration. */
struct RefillSchedulerConfig
{
    /** RNG-vs-memory arbitration policy. */
    sysperf::FairnessPolicy policy =
        sysperf::FairnessPolicy::BufferedFair;
    /** Channel-time window modelled per tick, in ns. */
    double tickNs = 1.0e5;
    /** Idle re-entry overhead per gap (see sysperf::injectQuac). */
    double reentryOverheadNs = 20.0;
    /** Seed of the per-tick demand-traffic timelines. */
    uint64_t seed = 1;
    /** Channel timing the refill commands are scheduled against. */
    dram::TimingParams timing = dram::TimingParams::ddr4(2400);
    /** Refill command program (iteration-cost probe input). */
    sched::QuacScheduleConfig schedule;
};

/** Accounting of the refill loop, per tick and accumulated. */
struct RefillAccounting
{
    uint64_t ticks = 0;
    /** Channel time modelled (ticks x tickNs). */
    double modeledNs = 0.0;
    /** Channel time the service's demand asked for. */
    double neededNs = 0.0;
    /** Channel time granted under the fairness policy. */
    double grantedNs = 0.0;
    /** Idle time that was usable for FCFS-style refill. */
    double usableIdleNs = 0.0;
    /** Demand-traffic time displaced by prioritized refill. */
    double stolenBusyNs = 0.0;
    /** Demand-traffic busy time in the modelled windows. */
    double busyNs = 0.0;
    /** Bytes the service wanted / actually pulled. */
    uint64_t bytesRequested = 0;
    uint64_t bytesRefilled = 0;

    /** Fractional slowdown charged to regular memory traffic. */
    double
    memSlowdown() const
    {
        return busyNs > 0.0 ? stolenBusyNs / busyNs : 0.0;
    }

    /** Refill throughput over the modelled time, in Gb/s. */
    double
    refillGbps() const
    {
        return modeledNs > 0.0
                   ? static_cast<double>(bytesRefilled) * 8.0 /
                         modeledNs
                   : 0.0;
    }
};

/** The per-channel refill loop driving one EntropyService. */
class RefillScheduler
{
  public:
    /**
     * @param service service to top up (kept by reference).
     * @param demand co-running memory-traffic profile.
     * @param cfg refill-loop parameters.
     */
    RefillScheduler(EntropyService &service,
                    const sysperf::WorkloadProfile &demand,
                    RefillSchedulerConfig cfg = {});

    /**
     * Run one tick: measure demand, arbitrate, refill. Returns the
     * tick's accounting (also accumulated into total()).
     */
    RefillAccounting tick();

    /** Run @p n ticks; returns the accumulated total. */
    const RefillAccounting &run(uint64_t n);

    const RefillAccounting &total() const { return total_; }

    /** BusScheduler-measured refill iteration cost. */
    const sched::RefillCost &iterationCost() const { return cost_; }

  private:
    EntropyService &service_;
    sysperf::WorkloadProfile demand_;
    RefillSchedulerConfig cfg_;
    sched::RefillCost cost_;
    RefillAccounting total_;
    uint64_t tickIndex_ = 0;
};

} // namespace quac::service

#endif // QUAC_SERVICE_REFILL_SCHEDULER_HH

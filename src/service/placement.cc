#include "service/placement.hh"

#include "common/error.hh"

namespace quac::service
{

SloMigrator::SloMigrator(EntropyService &service,
                         SloMigratorConfig cfg)
    : service_(service), cfg_(cfg)
{
    if (cfg_.breachTicks == 0)
        fatal("SLO migrator needs breachTicks >= 1");
    if (cfg_.improvementFactor <= 0.0 || cfg_.improvementFactor > 1.0)
        fatal("SLO migrator improvement factor must be in (0, 1]");
}

void
SloMigrator::manage(EntropyService::Client client)
{
    managed_.push_back({client, 0, 0});
}

size_t
SloMigrator::tick()
{
    ++tickIndex_;
    size_t nshards = service_.shardCount();
    // One snapshot per shard per tick (a wait-free cursor read each
    // on the lock-free plane): every decision below sees the same
    // picture.
    std::vector<double> load(nshards);
    std::vector<double> p95(nshards);
    std::vector<double> p99(nshards);
    for (size_t s = 0; s < nshards; ++s) {
        EntropyService::ShardLoadSnapshot snapshot =
            service_.shardLoadSnapshot(s);
        load[s] = snapshot.load;
        p95[s] = snapshot.recentP95Ns;
        p99[s] = snapshot.recentP99Ns;
    }

    size_t moved = 0;
    for (Managed &managed : managed_) {
        if (moved >= cfg_.maxMigrationsPerTick)
            break;
        const SloTarget &slo =
            cfg_.slo[static_cast<size_t>(managed.client.priority())];
        if (!slo.active())
            continue;
        size_t current = managed.client.shard();
        bool breach =
            (slo.p95Ns > 0.0 && p95[current] > slo.p95Ns) ||
            (slo.p99Ns > 0.0 && p99[current] > slo.p99Ns);
        if (!breach) {
            managed.breach = 0;
            continue;
        }
        if (managed.breach < cfg_.breachTicks)
            ++managed.breach;
        if (managed.breach < cfg_.breachTicks ||
            tickIndex_ < managed.cooldownUntil)
            continue;

        size_t best = current;
        for (size_t s = 0; s < nshards; ++s) {
            if (s != current && load[s] < load[best])
                best = s;
        }
        // Hysteresis: only move to a meaningfully better shard, so
        // two equally overloaded shards never trade clients.
        if (best == current ||
            load[best] >= load[current] * cfg_.improvementFactor)
            continue;
        if (!service_.migrateClient(managed.client, best))
            continue;
        events_.push_back({managed.client.name(), current, best,
                           tickIndex_});
        managed.breach = 0;
        managed.cooldownUntil = tickIndex_ + cfg_.cooldownTicks;
        ++migrations_;
        ++moved;
        // The moved client's demand now lands on the destination;
        // nudge its snapshot load so one tick does not funnel every
        // breaching client onto the same shard.
        load[best] = load[current];
    }
    return moved;
}

} // namespace quac::service

#include "service/latency_model.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace quac::service
{

namespace
{

/** Nearest-rank index into @p n sorted samples for quantile @p q. */
size_t
nearestRank(double q, size_t n)
{
    size_t rank =
        static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
    return std::min(std::max<size_t>(rank, 1), n) - 1;
}

} // anonymous namespace

LatencyDistribution::LatencyDistribution(
    const LatencyDistribution &other)
{
    std::lock_guard<std::mutex> lock(other.mutex_);
    samples_ = other.samples_;
    sorted_ = other.sorted_;
    sum_ = other.sum_;
    max_ = other.max_;
}

LatencyDistribution &
LatencyDistribution::operator=(const LatencyDistribution &other)
{
    if (this == &other)
        return *this;
    std::scoped_lock lock(mutex_, other.mutex_);
    samples_ = other.samples_;
    sorted_ = other.sorted_;
    sum_ = other.sum_;
    max_ = other.max_;
    return *this;
}

void
LatencyDistribution::add(double latency_ns)
{
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.push_back(latency_ns);
    sorted_ = samples_.size() == 1;
    sum_ += latency_ns;
    max_ = std::max(max_, latency_ns);
}

void
LatencyDistribution::merge(const LatencyDistribution &other)
{
    if (this == &other) {
        // Self-merge doubles the samples; snapshot first so the
        // insert does not read the vector it is growing.
        LatencyDistribution copy(other);
        merge(copy);
        return;
    }
    std::scoped_lock lock(mutex_, other.mutex_);
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = samples_.empty();
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
}

size_t
LatencyDistribution::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_.size();
}

double
LatencyDistribution::meanNs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_.empty()
               ? 0.0
               : sum_ / static_cast<double>(samples_.size());
}

double
LatencyDistribution::maxNs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return max_;
}

double
LatencyDistribution::percentileNs(double q) const
{
    QUAC_ASSERT(q > 0.0 && q <= 1.0, "q=%f", q);
    std::lock_guard<std::mutex> lock(mutex_);
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    return samples_[nearestRank(q, samples_.size())];
}

RecentLatencyWindow::RecentLatencyWindow(size_t capacity)
    : ring_(capacity ? capacity : 1)
{
}

void
RecentLatencyWindow::add(double latency_ns)
{
    ring_[next_] = latency_ns;
    next_ = (next_ + 1) % ring_.size();
    count_ = std::min(count_ + 1, ring_.size());
}

void
RecentLatencyWindow::clear()
{
    next_ = 0;
    count_ = 0;
}

double
RecentLatencyWindow::percentileNs(double q) const
{
    QUAC_ASSERT(q > 0.0 && q <= 1.0, "q=%f", q);
    if (count_ == 0)
        return 0.0;
    std::vector<double> sorted(ring_.begin(),
                               ring_.begin() +
                                   static_cast<ptrdiff_t>(count_));
    size_t rank = nearestRank(q, count_);
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<ptrdiff_t>(rank),
                     sorted.end());
    return sorted[rank];
}

} // namespace quac::service

#include "service/latency_model.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace quac::service
{

namespace
{

/** Nearest-rank index into @p n sorted samples for quantile @p q. */
size_t
nearestRank(double q, size_t n)
{
    size_t rank =
        static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
    return std::min(std::max<size_t>(rank, 1), n) - 1;
}

} // anonymous namespace

LatencyDistribution::LatencyDistribution(
    const LatencyDistribution &other)
{
    std::lock_guard<std::mutex> lock(other.mutex_);
    samples_ = other.samples_;
    sorted_ = other.sorted_;
    sum_ = other.sum_;
    max_ = other.max_;
}

LatencyDistribution &
LatencyDistribution::operator=(const LatencyDistribution &other)
{
    if (this == &other)
        return *this;
    std::scoped_lock lock(mutex_, other.mutex_);
    samples_ = other.samples_;
    sorted_ = other.sorted_;
    sum_ = other.sum_;
    max_ = other.max_;
    return *this;
}

void
LatencyDistribution::add(double latency_ns)
{
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.push_back(latency_ns);
    sorted_ = samples_.size() == 1;
    sum_ += latency_ns;
    max_ = std::max(max_, latency_ns);
}

void
LatencyDistribution::merge(const LatencyDistribution &other)
{
    if (this == &other) {
        // Self-merge doubles the samples; snapshot first so the
        // insert does not read the vector it is growing.
        LatencyDistribution copy(other);
        merge(copy);
        return;
    }
    std::scoped_lock lock(mutex_, other.mutex_);
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = samples_.empty();
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
}

size_t
LatencyDistribution::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_.size();
}

double
LatencyDistribution::meanNs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_.empty()
               ? 0.0
               : sum_ / static_cast<double>(samples_.size());
}

double
LatencyDistribution::maxNs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return max_;
}

double
LatencyDistribution::percentileNs(double q) const
{
    QUAC_ASSERT(q > 0.0 && q <= 1.0, "q=%f", q);
    std::lock_guard<std::mutex> lock(mutex_);
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    return samples_[nearestRank(q, samples_.size())];
}

RecentLatencyWindow::RecentLatencyWindow(size_t capacity)
    : ring_(capacity ? capacity : 1)
{
}

RecentLatencyWindow::RecentLatencyWindow(
    const RecentLatencyWindow &other)
    : ring_(other.ring_.size())
{
    for (size_t i = 0; i < ring_.size(); ++i)
        ring_[i].store(other.ring_[i].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    next_.store(other.next_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    base_.store(other.base_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
}

RecentLatencyWindow &
RecentLatencyWindow::operator=(const RecentLatencyWindow &other)
{
    if (this == &other)
        return *this;
    std::vector<std::atomic<double>> fresh(other.ring_.size());
    for (size_t i = 0; i < fresh.size(); ++i)
        fresh[i].store(other.ring_[i].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    ring_ = std::move(fresh);
    next_.store(other.next_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    base_.store(other.base_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
}

void
RecentLatencyWindow::add(double latency_ns)
{
    uint64_t slot = next_.fetch_add(1, std::memory_order_relaxed);
    ring_[slot % ring_.size()].store(latency_ns,
                                     std::memory_order_relaxed);
}

void
RecentLatencyWindow::clear()
{
    // Retiring the window is just advancing the base: old slots stay
    // written but fall outside (base_, next_] and age out of every
    // later percentile query.
    base_.store(next_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
}

size_t
RecentLatencyWindow::count() const
{
    uint64_t next = next_.load(std::memory_order_relaxed);
    uint64_t base = base_.load(std::memory_order_relaxed);
    uint64_t live = next > base ? next - base : 0;
    return static_cast<size_t>(
        std::min<uint64_t>(live, ring_.size()));
}

double
RecentLatencyWindow::percentileNs(double q) const
{
    QUAC_ASSERT(q > 0.0 && q <= 1.0, "q=%f", q);
    uint64_t next = next_.load(std::memory_order_relaxed);
    uint64_t base = base_.load(std::memory_order_relaxed);
    uint64_t live = next > base ? next - base : 0;
    size_t n = static_cast<size_t>(
        std::min<uint64_t>(live, ring_.size()));
    if (n == 0)
        return 0.0;
    // Snapshot the live slots (a racing add may replace a sample
    // mid-copy with a newer one: both were real latencies, and a
    // one-sample wobble is noise to a percentile signal).
    std::vector<double> sorted(n);
    for (size_t i = 0; i < n; ++i) {
        sorted[i] =
            ring_[(next - n + i) % ring_.size()].load(
                std::memory_order_relaxed);
    }
    size_t rank = nearestRank(q, n);
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<ptrdiff_t>(rank),
                     sorted.end());
    return sorted[rank];
}

} // namespace quac::service

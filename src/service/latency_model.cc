#include "service/latency_model.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace quac::service
{

namespace
{

/** Nearest-rank index into @p n sorted samples for quantile @p q. */
size_t
nearestRank(double q, size_t n)
{
    size_t rank =
        static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
    return std::min(std::max<size_t>(rank, 1), n) - 1;
}

} // anonymous namespace

LatencyDistribution::LatencyDistribution(
    const LatencyDistribution &other)
{
    MutexLock lock(other.mutex_);
    samples_ = other.samples_;
    sorted_ = other.sorted_;
    sum_ = other.sum_;
    max_ = other.max_;
}

LatencyDistribution &
LatencyDistribution::operator=(const LatencyDistribution &other)
{
    if (this == &other)
        return *this;
    // Snapshot `other` under its own lock, then apply under ours.
    // Two short critical sections instead of one two-mutex
    // scoped_lock: only one distribution mutex is ever held at a
    // time, so there is no A=B vs B=A lock-order hazard and the
    // thread-safety analysis can check both sections.
    std::vector<double> their_samples;
    bool their_sorted;
    double their_sum;
    double their_max;
    {
        MutexLock lock(other.mutex_);
        their_samples = other.samples_;
        their_sorted = other.sorted_;
        their_sum = other.sum_;
        their_max = other.max_;
    }
    MutexLock lock(mutex_);
    samples_ = std::move(their_samples);
    sorted_ = their_sorted;
    sum_ = their_sum;
    max_ = their_max;
    return *this;
}

void
LatencyDistribution::add(double latency_ns)
{
    MutexLock lock(mutex_);
    samples_.push_back(latency_ns);
    sorted_ = samples_.size() == 1;
    sum_ += latency_ns;
    max_ = std::max(max_, latency_ns);
}

void
LatencyDistribution::merge(const LatencyDistribution &other)
{
    // Same snapshot-then-apply shape as operator=; it also makes
    // self-merge (doubling the samples) safe without a special case,
    // because the insert reads the snapshot, not the vector it is
    // growing.
    std::vector<double> their_samples;
    double their_sum;
    double their_max;
    {
        MutexLock lock(other.mutex_);
        their_samples = other.samples_;
        their_sum = other.sum_;
        their_max = other.max_;
    }
    MutexLock lock(mutex_);
    samples_.insert(samples_.end(), their_samples.begin(),
                    their_samples.end());
    sorted_ = samples_.empty();
    sum_ += their_sum;
    max_ = std::max(max_, their_max);
}

size_t
LatencyDistribution::count() const
{
    MutexLock lock(mutex_);
    return samples_.size();
}

double
LatencyDistribution::meanNs() const
{
    MutexLock lock(mutex_);
    return samples_.empty()
               ? 0.0
               : sum_ / static_cast<double>(samples_.size());
}

double
LatencyDistribution::maxNs() const
{
    MutexLock lock(mutex_);
    return max_;
}

double
LatencyDistribution::percentileNs(double q) const
{
    QUAC_ASSERT(q > 0.0 && q <= 1.0, "q=%f", q);
    MutexLock lock(mutex_);
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    return samples_[nearestRank(q, samples_.size())];
}

RecentLatencyWindow::RecentLatencyWindow(size_t capacity)
    : ring_(capacity ? capacity : 1)
{
}

RecentLatencyWindow::RecentLatencyWindow(
    const RecentLatencyWindow &other)
    : ring_(other.ring_.size())
{
    // relaxed: copying a statistics window; a torn-in-time snapshot
    // of independent slots is an acceptable signal, not a data race.
    for (size_t i = 0; i < ring_.size(); ++i)
        ring_[i].store(other.ring_[i].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    next_.store(other.next_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    base_.store(other.base_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
}

RecentLatencyWindow &
RecentLatencyWindow::operator=(const RecentLatencyWindow &other)
{
    if (this == &other)
        return *this;
    std::vector<std::atomic<double>> fresh(other.ring_.size());
    // relaxed: same snapshot-copy contract as the copy constructor.
    for (size_t i = 0; i < fresh.size(); ++i)
        fresh[i].store(other.ring_[i].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    ring_ = std::move(fresh);
    next_.store(other.next_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    base_.store(other.base_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
}

void
RecentLatencyWindow::add(double latency_ns)
{
    // relaxed: slots carry independent samples and readers tolerate
    // stale or mid-update windows; no ordering with other data needed.
    uint64_t slot = next_.fetch_add(1, std::memory_order_relaxed);
    ring_[slot % ring_.size()].store(latency_ns,
                                     std::memory_order_relaxed);
}

void
RecentLatencyWindow::clear()
{
    // Retiring the window is just advancing the base: old slots stay
    // written but fall outside (base_, next_] and age out of every
    // later percentile query.
    // relaxed: cursor-only update; racing queries may see the old or
    // new window boundary, both are valid signal states.
    base_.store(next_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
}

size_t
RecentLatencyWindow::count() const
{
    // relaxed: the pair of cursors need not be mutually consistent;
    // the `next > base` guard bounds any momentary skew at zero.
    uint64_t next = next_.load(std::memory_order_relaxed);
    uint64_t base = base_.load(std::memory_order_relaxed);
    uint64_t live = next > base ? next - base : 0;
    return static_cast<size_t>(
        std::min<uint64_t>(live, ring_.size()));
}

double
RecentLatencyWindow::percentileNs(double q) const
{
    QUAC_ASSERT(q > 0.0 && q <= 1.0, "q=%f", q);
    // relaxed: see count(); the snapshot loop below likewise accepts
    // a racing add replacing one sample with a newer real one.
    uint64_t next = next_.load(std::memory_order_relaxed);
    uint64_t base = base_.load(std::memory_order_relaxed);
    uint64_t live = next > base ? next - base : 0;
    size_t n = static_cast<size_t>(
        std::min<uint64_t>(live, ring_.size()));
    if (n == 0)
        return 0.0;
    // relaxed: snapshot of the live slots — a racing add may replace
    // a sample mid-copy with a newer one, but both were real
    // latencies, and a one-sample wobble is noise to a percentile.
    std::vector<double> sorted(n);
    for (size_t i = 0; i < n; ++i) {
        sorted[i] =
            ring_[(next - n + i) % ring_.size()].load(
                std::memory_order_relaxed);
    }
    size_t rank = nearestRank(q, n);
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<ptrdiff_t>(rank),
                     sorted.end());
    return sorted[rank];
}

} // namespace quac::service

#include "service/latency_model.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace quac::service
{

void
LatencyDistribution::add(double latency_ns)
{
    samples_.push_back(latency_ns);
    sorted_ = samples_.size() == 1;
    sum_ += latency_ns;
    max_ = std::max(max_, latency_ns);
}

void
LatencyDistribution::merge(const LatencyDistribution &other)
{
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = samples_.empty();
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
}

double
LatencyDistribution::meanNs() const
{
    return samples_.empty()
               ? 0.0
               : sum_ / static_cast<double>(samples_.size());
}

double
LatencyDistribution::maxNs() const
{
    return max_;
}

double
LatencyDistribution::percentileNs(double q) const
{
    QUAC_ASSERT(q > 0.0 && q <= 1.0, "q=%f", q);
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(samples_.size())));
    rank = std::min(std::max<size_t>(rank, 1), samples_.size());
    return samples_[rank - 1];
}

} // namespace quac::service

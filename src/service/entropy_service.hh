/**
 * @file
 * Sharded, multi-client entropy service (paper Section 9 scaled out;
 * DR-STRaNGe's end-to-end system design).
 *
 * A pool of backend generators (one QuacTrng per module, or any
 * core::Trng) feeds N sharded ring buffers of controller SRAM.
 * Clients connect with a priority class and are pinned to a shard;
 * requests are served from the shard's buffer, falling back to
 * synchronous generation (interactive/standard) or backpressure
 * (bulk) when drained. Refill is decoupled from the request path:
 * refillBelowWatermark()/refillTick() top shards up in whole backend
 * iterations, either unbudgeted, under a channel-time budget from the
 * scheduler-aware RefillScheduler, or continuously from a background
 * thread (startAutoRefill).
 *
 * Determinism: each shard drains its backend strictly in stream
 * order (refills and synchronous fills both advance the same
 * stream), so a given (backend seed, shard, per-shard request order)
 * schedule replays byte-identically — including across serial and
 * concurrent runs — as long as each backend serves one shard.
 * Shared backends (more shards than backends) stay correct and
 * race-free via per-backend locks, but the interleaving of refills
 * then decides which shard receives which bytes.
 *
 * Request data plane: buffered reads are lock-free. Each shard ring
 * is single-producer/multi-consumer — consumers claim byte ranges by
 * CAS on an atomic cursor, the refill producer publishes bytes with
 * a release-stored tail, and the hot-path bookkeeping (per-client
 * stats, the recent-latency window, per-priority distributions) is
 * sharded or atomic, so a buffer hit never takes Shard::mutex. Slow
 * paths (miss/sync-fill, re-sourcing, retune/flush, storage resize)
 * keep the mutex and fence lock-free readers out via the cursor
 * generation + the resourceEpoch_ revalidation check.
 * cfg.lockFreeReads = false restores the legacy full-mutex serving
 * path, byte-for-byte identical — the replay tests cross-check the
 * two planes against each other.
 */

#ifndef QUAC_SERVICE_ENTROPY_SERVICE_HH
#define QUAC_SERVICE_ENTROPY_SERVICE_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"
#include "core/trng.hh"
#include "service/health.hh"
#include "service/latency_model.hh"

namespace quac::service
{

/** Client request classes (DR-STRaNGe's latency/throughput split). */
enum class Priority : uint8_t
{
    /** Latency-critical: misses complete synchronously. */
    Interactive = 0,
    /** Default class: misses complete synchronously. */
    Standard = 1,
    /**
     * Throughput class served from buffered entropy only: a drained
     * shard returns a partial result (backpressure) instead of
     * stealing generator time from the other classes.
     */
    Bulk = 2,
};

/** Display name ("interactive", "standard", "bulk"). */
const char *priorityName(Priority priority);

/**
 * How connect() picks a shard for auto-placed clients (DR-STRaNGe's
 * RNG-interference failure mode: a latency-critical client pinned to
 * an overloaded shard stays slow forever under blind round-robin).
 */
enum class PlacementPolicy : uint8_t
{
    /** Shards assigned in connect order, blind to load. */
    RoundRobin = 0,
    /**
     * Interactive clients go to the shard with the lowest load score
     * (buffered-bytes deficit + recent p95, see shardLoad());
     * Standard/Bulk clients still round-robin, so throughput traffic
     * keeps spreading instead of piling onto the emptiest shard.
     */
    LeastLoaded = 1,
};

/** Display name ("round-robin", "least-loaded"). */
const char *placementPolicyName(PlacementPolicy policy);

/** Outcome class of one admission-controlled connect (admit()). */
enum class AdmissionDecision : uint8_t
{
    /** Connected; AdmissionOutcome::client holds the handle. */
    Admitted = 0,
    /** Parked in the bounded retry queue; admissionTick() admits it
     * once interactive headroom recovers. */
    Queued = 1,
    /** Rejected outright: the retry queue is full. */
    Denied = 2,
};

/** Display name ("admitted", "queued", "denied"). */
const char *admissionDecisionName(AdmissionDecision decision);

/**
 * SLO-aware admission control for bulk connects (DR-STRaNGe's
 * interference failure mode: a flash crowd of throughput clients
 * drains the buffers the latency-critical class depends on). admit()
 * gates Bulk connects on interactive p99 headroom — the worst
 * per-shard recent p99 must sit below headroomFraction x the SLO —
 * and parks the rest in a bounded FIFO retried with exponential
 * backoff by admissionTick(). Interactive/Standard clients always
 * connect: they are the class admission exists to protect.
 */
struct AdmissionConfig
{
    bool enabled = false;
    /** Interactive p99 SLO in modelled ns (> 0 when enabled). */
    double interactiveSloNs = 0.0;
    /** Admit while worst recent shard p99 <= this fraction of the
     * SLO; the (1 - fraction) margin absorbs the admitted client's
     * own drain before the next headroom check. */
    double headroomFraction = 0.8;
    /** Retry-queue capacity; overflow is denied outright, so the
     * number of waiting connects is bounded by construction. */
    size_t maxQueuedConnects = 64;
    /** Base retry backoff in admissionTick() ticks (>= 1). */
    uint32_t retryBackoffTicks = 1;
    /** Backoff ceiling: doubling per failed retry stops here, so a
     * parked connect keeps probing and is eventually admitted once
     * headroom returns. */
    uint32_t maxBackoffTicks = 16;
    /**
     * Decay factor of the per-shard decayed tail-latency estimate
     * (in [0, 1); 0 disables). The windowed p99 the gate reads goes
     * blind when a full top-up retires the recent window
     * (shard.recent.clear()); the decayed estimate — a decaying max
     * updated as max(sample, estimate * decay) per non-bulk timed
     * request and decayed once more per admissionTick — survives
     * the reset, so the gate keeps seeing recent congestion until
     * it genuinely ages out instead of snapping open on the first
     * tick after a refill. The default halves the estimate per good
     * sample (0.5^4 ~= 0.06 across one small window): strong enough
     * to bridge the top-up blind spot, weak enough that a genuinely
     * recovered shard reopens the gate within about one window of
     * good samples.
     */
    double tailDecayPerSample = 0.5;
};

/** Service configuration. */
struct EntropyServiceConfig
{
    /** Shard count; 0 = one shard per backend. */
    size_t shards = 0;
    /** Buffer capacity per shard in bytes (controller SRAM slice). */
    size_t shardCapacityBytes = 4096;
    /**
     * Refill threshold: a shard is topped up once its fill level is
     * at or below this fraction of capacity.
     */
    double refillWatermark = 0.5;
    /**
     * Panic threshold: levels at or below this fraction count as
     * urgent demand, which the BufferedFair refill policy escalates
     * to demand-traffic expense.
     */
    double panicWatermark = 0.125;
    /** Hard per-request byte cap (0 = unlimited); larger = denied. */
    size_t maxRequestBytes = 0;
    /**
     * Worker threads for refillBelowWatermark() across shards
     * (common/parallel pool); must be >= 1, 1 = serial. Serial
     * refill keeps shared-backend byte assignment deterministic;
     * dedicated backends are deterministic either way.
     */
    unsigned refillThreads = 1;
    /** Request-latency model parameters (timestamped requests). */
    LatencyModelConfig latency;
    /** Shard choice for auto-placed connect() calls. */
    PlacementPolicy placement = PlacementPolicy::RoundRobin;
    /**
     * Weight of a shard's recent p95 latency in its load score, in
     * load units per nanosecond: shardLoad() = deficit fraction
     * (0..1) + p95_ns * this. The default makes ~1 us of recent tail
     * latency outweigh a completely drained buffer, so a shard whose
     * clients are missing to synchronous fills repels new
     * interactive placements even when its buffer happens to be
     * momentarily full.
     */
    double placementLatencyWeight = 1.0e-3;
    /**
     * Weight of a shard's queued modelled work in its load score, in
     * load units per nanosecond of busy horizon. The horizon is
     * max(0, busyUntilNs - latest modelled arrival): how far the
     * shard's backend is booked into the modelled future by
     * synchronous fills that have not yet drained. The windowed p95
     * only sees *completed* requests, so a shard that just absorbed
     * a burst of misses looks idle to it until those latencies
     * retire; the horizon term repels placements from work that is
     * already committed but not yet visible. 0 restores the
     * deficit + p95 score byte-for-byte.
     */
    double placementBusyWeight = 1.0e-3;
    /**
     * Per-shard recent-latency window size (samples) feeding
     * shardRecentPercentileNs() and the load score.
     */
    size_t recentLatencyWindow = 128;
    /**
     * Legacy (health-off) synchronous-fill retry budget: a backend
     * exception on the miss path is caught, counted
     * (HealthStats::refillFailures) and the fill retried up to this
     * many more times — with a bounded exponential backoff between
     * attempts — before the last error surfaces to the caller.
     * Transient interface faults (a FaultInjectedTrng ReadFailure
     * window) advance the stream past the fault on every attempt, so
     * a retry genuinely can serve the bytes. 0 restores the
     * surface-immediately behaviour. Health-on services use the
     * quarantine failover loop instead and ignore this.
     */
    uint32_t syncFillRetries = 2;
    /**
     * Base wall-clock backoff between legacy sync-fill retries;
     * doubles per attempt, capped at 16x the base. Zero disables the
     * sleep (tests).
     */
    std::chrono::microseconds syncFillBackoff{50};
    /** SLO-aware admission control on bulk connects (admit()). */
    AdmissionConfig admission;
    /**
     * Streaming SP 800-90B health monitoring (service/health.hh).
     * When enabled, every byte a backend bank produces is scored;
     * failing banks are quarantined and their shards re-sourced from
     * the remaining pool. Provision more backends than shards so a
     * re-sourced shard lands on an unconsumed spare stream — then
     * every healthy shard's output stays byte-identical to a
     * monitoring-off run (the standing replay invariant).
     */
    HealthConfig health;
    /**
     * Serve buffered reads lock-free (SPMC claim on the shard ring's
     * atomic cursors, no shard mutex on the hit path). false
     * restores the legacy full-mutex request path — the served byte
     * streams are identical either way; the replay tests flip this
     * to cross-check the lock-free plane against the mutex plane.
     */
    bool lockFreeReads = true;
};

/** Outcome of one client request. */
struct RequestResult
{
    /** Bytes actually delivered (may be < requested for Bulk). */
    size_t bytes = 0;
    /** The part of bytes that came from the shard buffer. */
    size_t bytesFromBuffer = 0;
    /** Served entirely from the shard buffer. */
    bool hit = false;
    /** Rejected outright by backpressure (maxRequestBytes). */
    bool denied = false;
    /**
     * Modelled end-to-end latency in simulated ns (timestamped
     * requests only; 0 for the untimed request path and denials).
     */
    double modeledLatencyNs = 0.0;
};

/** Per-client service statistics. */
struct ClientStats
{
    uint64_t requests = 0;
    uint64_t bufferHits = 0;
    /** Misses completed synchronously on the backend. */
    uint64_t synchronousFills = 0;
    /** Bulk-class misses served partially from the buffer. */
    uint64_t partialServes = 0;
    uint64_t denials = 0;
    uint64_t bytesServed = 0;
    uint64_t bytesFromBuffer = 0;
    uint64_t bytesSynchronous = 0;
    /** Times this client was moved to another shard. */
    uint64_t migrations = 0;
};

/** The sharded entropy service. */
class EntropyService
{
  public:
    /** Pass to connect() for round-robin shard placement. */
    static constexpr size_t autoShard = ~size_t{0};

    /**
     * @param backends generator pool (kept by reference, must
     *        outlive the service). Shard i pulls from backend
     *        i % backends.size().
     * @param cfg service parameters.
     */
    explicit EntropyService(std::vector<core::Trng *> backends,
                            EntropyServiceConfig cfg = {});

    EntropyService(const EntropyService &) = delete;
    EntropyService &operator=(const EntropyService &) = delete;

    ~EntropyService();

    /** Client handle; copyable, owned state lives in the service. */
    class Client
    {
      public:
        /**
         * Serve a request into @p out. Interactive/Standard clients
         * always receive @p len bytes unless denied; Bulk clients
         * receive what the shard buffer holds.
         */
        RequestResult request(uint8_t *out, size_t len);

        /**
         * Zero-copy network serving entry: request() with a
         * no-throw guarantee. The payload lands directly in @p out
         * (a response datagram's payload region — buffered bytes
         * are claimed straight off the lock-free shard ring with no
         * intermediate copy), and a backend failure that request()
         * would propagate as an exception is returned as a denied
         * result instead, because a wire server must answer DENY
         * rather than unwind its event loop.
         */
        RequestResult serveInto(uint8_t *out, size_t len) noexcept;

        /**
         * Timestamped request: like request(), but the request
         * arrives at @p arrival_ns of the caller's simulated clock.
         * It queues behind earlier modelled work on the shard
         * (synchronous fills occupy the backend), its end-to-end
         * latency is returned in RequestResult::modeledLatencyNs and
         * recorded into the service's per-priority distribution.
         * Served bytes are identical to the untimed path.
         */
        RequestResult requestAt(uint8_t *out, size_t len,
                                double arrival_ns);

        /** Convenience byte-vector request (sized to served bytes). */
        std::vector<uint8_t> request(size_t len);

        const std::string &name() const;
        Priority priority() const;
        /** Shard this client is pinned to. */
        size_t shard() const;
        /** Snapshot of this client's statistics. */
        ClientStats stats() const;

      private:
        friend class EntropyService;
        struct State;
        Client(EntropyService *service, State *state)
            : service_(service), state_(state)
        {
        }

        EntropyService *service_;
        State *state_;
    };

    /**
     * Register a client. @p shard pins it to a specific shard;
     * autoShard places it by cfg.placement (round-robin in connect
     * order, or least-loaded for interactive clients under
     * PlacementPolicy::LeastLoaded).
     */
    Client connect(std::string name,
                   Priority priority = Priority::Standard,
                   size_t shard = autoShard);

    /** @name SLO-aware admission control (cfg.admission.enabled) */
    /**@{*/
    /** What admit() decided, plus the handle when admitted. */
    struct AdmissionOutcome
    {
        AdmissionDecision decision = AdmissionDecision::Admitted;
        /** Engaged iff decision == Admitted. */
        std::optional<Client> client;
    };

    /**
     * Admission-controlled connect. Interactive/Standard clients and
     * disabled admission pass straight through to connect(). Bulk
     * clients are admitted while interactive p99 headroom holds
     * (admissionHeadroom()) and the retry queue is empty (FIFO: no
     * overtaking parked clients); otherwise they are queued (bounded
     * by cfg.admission.maxQueuedConnects) or denied on overflow.
     */
    AdmissionOutcome admit(std::string name,
                           Priority priority = Priority::Standard,
                           size_t shard = autoShard);

    /**
     * One admission control-loop step (the scenario engine and the
     * campaign drivers call this once per tick): retries queued
     * connects that are due, in FIFO order, admitting while headroom
     * lasts and backing the queue head off (bounded exponential)
     * when it is still thin. Returns the clients admitted from the
     * queue this tick — the caller owns driving them. No-op (empty)
     * when admission is disabled.
     */
    std::vector<Client> admissionTick();

    /** Admission counters. */
    struct AdmissionStats
    {
        bool enabled = false;
        /** admit() calls that went through the bulk gate. */
        uint64_t attempts = 0;
        /** Total admitted (immediately + from the queue). */
        uint64_t admitted = 0;
        /** Parked in the retry queue at admit() time. */
        uint64_t queued = 0;
        /** Rejected outright (queue overflow). */
        uint64_t denied = 0;
        /** Queued-connect retry evaluations by admissionTick(). */
        uint64_t retries = 0;
        /** The part of `admitted` that waited in the queue. */
        uint64_t admittedFromQueue = 0;
        /** Currently waiting. */
        uint64_t queuedNow = 0;
        /** High-water mark of the queue depth. */
        uint64_t maxQueueDepth = 0;
    };

    AdmissionStats admissionStats() const;

    /**
     * The admission headroom signal: worst per-shard recent p99
     * (shardRecentPercentileNs) across the service — a windowed
     * measure of what latency-critical clients currently experience,
     * which recovers as the window ages out, unlike the cumulative
     * distributions.
     */
    double interactiveHeadroomP99Ns() const;

    /** Is the headroom signal below headroomFraction x the SLO? */
    bool admissionHeadroom() const;
    /**@}*/

    /** @name Online backend retuning (thermal recalibration) */
    /**@{*/
    /**
     * Retune @p backend in place: run @p reconfigure under the
     * backend's lock (no fill in flight — e.g. a
     * ThermalGovernor::setTemperature band switch), and if it
     * returns true, flush every shard currently sourced from the
     * backend and mark its chunk granularity stale. The flushed
     * bytes span the recalibration (suspect): they are dropped
     * unserved rather than mixed across calibrations, and the band
     * switch may have changed the backend's iteration geometry, so
     * the next refill re-resolves the chunk size. Returns the
     * suspect bytes dropped (0 when @p reconfigure returned false).
     */
    size_t retuneBackend(size_t backend,
                         const std::function<bool()> &reconfigure);

    /** Flush-only form: unconditionally mark @p backend's buffered
     * spans suspect and drop them. */
    size_t markBackendSuspect(size_t backend);

    /** Suspect bytes dropped by retuning so far (never served). */
    uint64_t suspectBytesDropped() const
    {
        // relaxed: monotonic stats counter; readers need no ordering.
        return suspectBytesDropped_.load(std::memory_order_relaxed);
    }

    /** Size of the backend pool. */
    size_t backendCount() const { return backends_.size(); }
    /**@}*/

    /**
     * Move @p client to @p shard: its next request drains the new
     * shard's stream. Migration never changes any shard's output
     * bytes — each shard keeps draining its own backend in request
     * order; only which stream this client reads changes. Safe to
     * call concurrently with the client's own requests (a request
     * already in flight completes on the old shard).
     * @return true if the client actually moved (false: same shard).
     */
    bool migrateClient(const Client &client, size_t shard);

    /** @name Shard inspection */
    /**@{*/
    size_t shardCount() const { return shards_.size(); }
    size_t shardCapacity() const { return cfg_.shardCapacityBytes; }
    /** Current fill level of @p shard in bytes. */
    size_t level(size_t shard) const;
    /** Sum of all shard levels. */
    size_t totalLevel() const;
    /**
     * Backend chunk granularity of @p shard (0 = none). Resolved
     * lazily: the first query may run the backend's one-time setup.
     */
    size_t shardChunkBytes(size_t shard);

    /**
     * Placement load score of @p shard: buffered-bytes deficit as a
     * fraction of capacity (0 = full, 1 = drained) plus the shard's
     * recent p95 request latency weighted by
     * cfg.placementLatencyWeight. Lower is better.
     */
    double shardLoad(size_t shard) const;

    /**
     * Nearest-rank percentile of @p shard's recent non-bulk request
     * latencies (timestamped requests only; 0 when none recorded).
     * This is the windowed per-shard signal the SLO migrator and the
     * latency-driven rebalancer consume — old congestion ages out of
     * the window once the shard recovers.
     */
    double shardRecentPercentileNs(size_t shard, double q) const;
    double shardRecentP95Ns(size_t shard) const
    {
        return shardRecentPercentileNs(shard, 0.95);
    }

    /**
     * The shard's decayed tail-latency estimate (see
     * AdmissionConfig::tailDecayPerSample). Maintained only while
     * admission is enabled with a nonzero decay; 0 otherwise.
     */
    double shardDecayedTailNs(size_t shard) const;

    /** The shard connect() would pick for an interactive client
     * under LeastLoaded placement (min shardLoad, ties by index). */
    size_t leastLoadedShard() const;

    /** One consistent placement view of a shard. */
    struct ShardLoadSnapshot
    {
        double load = 0.0;
        double recentP95Ns = 0.0;
        double recentP99Ns = 0.0;
    };

    /**
     * Load score and recent p95/p99 in one wait-free pass over the
     * shard's atomic cursors and lock-free latency window — the
     * per-tick probe the SLO migrator and the latency rebalancer
     * issue for every shard never contends with the request path.
     */
    ShardLoadSnapshot shardLoadSnapshot(size_t shard) const;
    /**@}*/

    /** @name Refill */
    /**@{*/
    /**
     * Bytes needed to top every at-or-below-watermark shard up to
     * capacity, rounded up to whole backend chunks (what a refill
     * would actually pull).
     */
    size_t refillDemandBytes();

    /** The part of refillDemandBytes() from shards at or below the
     * panic watermark (escalated under BufferedFair). */
    size_t urgentDemandBytes();

    /** Total and urgent demand in one consistent snapshot. */
    struct RefillDemand
    {
        size_t bytes = 0;
        size_t urgentBytes = 0; ///< Always <= bytes.
    };

    /**
     * Both demand figures with each shard's deficit read under one
     * lock acquisition, so urgentBytes <= bytes holds even while
     * clients drain concurrently (the separate accessors can tear).
     */
    RefillDemand refillDemand();

    /**
     * Demand restricted to @p shards (a channel's placement set in
     * the multi-channel refill scheduler).
     */
    RefillDemand refillDemand(const std::vector<size_t> &shards);

    /**
     * Top up every shard at or below the watermark to capacity in
     * whole backend chunks (a shard may transiently exceed capacity
     * by less than one chunk). Runs shards through the worker pool
     * when cfg.refillThreads != 1.
     * @return bytes added across all shards.
     */
    size_t refillBelowWatermark();

    /**
     * Budgeted refill: like refillBelowWatermark() but stops once
     * @p budget_bytes have been pulled, visiting most-drained shards
     * first (ties by shard index, so the order is deterministic).
     * The final chunk may overshoot the budget by less than one
     * chunk. @return bytes added.
     */
    size_t refillTick(size_t budget_bytes);

    /**
     * Budgeted refill restricted to @p shards: the per-channel form
     * used by the multi-channel scheduler, so each channel's granted
     * time only tops up the shards placed on it. Most-drained-first
     * within the set, ties by shard index.
     */
    size_t refillTick(size_t budget_bytes,
                      const std::vector<size_t> &shards);

    /**
     * Start the background refill thread: every @p period it tops up
     * shards below the watermark, modelling the memory controller's
     * continuous idle-bandwidth top-ups. Idempotent; stopped by
     * stopAutoRefill() or destruction.
     */
    void startAutoRefill(std::chrono::microseconds period);
    void stopAutoRefill();
    bool autoRefillRunning() const;
    /**@}*/

    /** @name Aggregate statistics
     *
     * Request-path aggregates are sums over the per-client sharded
     * accumulators (no shared counter on the hot path); refill
     * aggregates are producer-side atomics as before.
     */
    /**@{*/
    uint64_t requestsServed() const;
    uint64_t bufferHits() const;
    uint64_t synchronousFills() const;
    uint64_t denials() const;
    uint64_t refills() const { return refills_.load(); }
    uint64_t bytesRefilled() const { return bytesRefilled_.load(); }
    /**@}*/

    /** @name Health monitoring (cfg.health.enabled) */
    /**@{*/
    /** Service-level health counters. */
    struct HealthStats
    {
        bool enabled = false;
        /** Bank quarantine / re-admission transitions. */
        uint64_t quarantines = 0;
        uint64_t readmissions = 0;
        /** Backend fills that threw (caught, counted, survived). */
        uint64_t refillFailures = 0;
        /** Bytes dropped (never served) because their bank was
         * detected unhealthy: triggering pulls plus flushed rings. */
        uint64_t unhealthyBytesDropped = 0;
        /**
         * Tripwire: bytes served while the sourcing bank was
         * detected-unhealthy. Structurally zero — a nonzero value
         * means the quarantine plumbing leaked.
         */
        uint64_t unhealthyBytesServed = 0;
        /** Shard re-sourcings (quarantine moves + returns home). */
        uint64_t shardResourcings = 0;
    };

    /** Snapshot of the health counters (zeros when disabled). */
    HealthStats healthStats() const;

    /** The monitor, or nullptr when health is disabled. */
    const HealthMonitor *healthMonitor() const
    {
        return monitor_.get();
    }

    /**
     * One health control-loop step: draws a probation window from
     * every quarantined/probation bank (advancing re-admission
     * without client traffic) and eagerly propagates pending
     * quarantine/re-admission transitions to every shard (flush +
     * re-source). The refill schedulers call this once per tick; the
     * auto-refill thread calls it once per period. No-op when health
     * is disabled.
     */
    void healthTick();

    /** Backend bank currently sourcing @p shard (re-sourcing moves
     * it; equals the home bank while the home bank is healthy). */
    size_t shardBackendIndex(size_t shard) const;
    /**@}*/

    /** @name Modelled request latency (timestamped requests) */
    /**@{*/
    /**
     * Install the synchronous-fill channel rate, normally the
     * BusScheduler-measured sched::RefillCost::nsPerByte (the refill
     * schedulers call this when configured to).
     */
    void setMissLatencyNsPerByte(double ns_per_byte);

    /** Snapshot of @p priority's end-to-end latency distribution. */
    LatencyDistribution latencySnapshot(Priority priority) const;

    /** Drop all recorded latency samples (not the model config). */
    void resetLatencyStats();
    /**@}*/

  private:
    /**
     * One shard: a single-producer/multi-consumer ring buffer over a
     * slice of controller SRAM plus the backend it drains. Storage
     * holds capacity + one chunk of headroom so refills can pull
     * whole backend iterations without discarding entropy; it is
     * sized on the first chunk query (chunkLocked), because asking
     * the backend for its granularity may run its one-time setup and
     * must stay as lazy as the original RngService kept it.
     *
     * The ring is addressed by monotonic byte positions packed into
     * three atomic cursors (16-bit storage generation | 48-bit
     * position):
     *
     *  - tail:     bytes the refill producer has published, stored
     *              with release after the ring bytes are written;
     *  - claim:    bytes consumers have claimed — a lock-free read
     *              CASes it forward, then copies ring[pos % cap);
     *  - readDone: bytes fully copied out. Consumers advance it in
     *              claim (ticket) order, and the producer never
     *              writes past readDone + capacity, so a claimed
     *              range stays stable for the whole copy.
     *
     * Invariant: readDone <= claim <= tail (same generation) and
     * tail - readDone <= ring.size(). The generation only changes
     * when the storage itself is replaced (ringResetLocked); an
     * in-flight CAS from the old generation then fails and the
     * reader falls back to the mutex path. The mutex still guards
     * every slow path: refill, sync-fill, re-sourcing, retune/flush,
     * chunk resolution, and the legacy full-mutex serving mode
     * (cfg.lockFreeReads = false).
     */
    struct Shard
    {
        mutable Mutex mutex;
        core::Trng *backend QUAC_GUARDED_BY(mutex) = nullptr;
        /** Atomic because the lock-free serve path reads it for the
         * unhealthy-serve tripwire; written under the mutex. */
        std::atomic<size_t> backendIndex{0};
        /** The bank this shard was constructed on; a re-sourced
         * shard returns here once the bank is re-admitted. */
        size_t homeBackend QUAC_GUARDED_BY(mutex) = 0;
        /** Last resourceEpoch_ this shard revalidated against; the
         * lock-free path compares it before claiming and falls to
         * the mutex path on any pending transition. */
        std::atomic<uint64_t> seenEpoch{0};
        size_t chunk QUAC_GUARDED_BY(mutex) = 0;
        bool chunkKnown QUAC_GUARDED_BY(mutex) = false;
        /**
         * Ring storage. Deliberately NOT GUARDED_BY(mutex): byte
         * ranges are owned by the SPMC claim protocol on the atomic
         * cursors below (a lock-free reader copies a claimed range
         * with no lock held), so a mutex annotation would be a lie
         * requiring NO_THREAD_SAFETY_ANALYSIS escapes on the hot
         * path. Resizing/replacing the vector itself does require
         * the mutex AND the generation fence (ringResetLocked).
         */
        std::vector<uint8_t> ring;
        /** SPMC cursors; see the struct comment. */
        std::atomic<uint64_t> claim{0};
        std::atomic<uint64_t> tail{0};
        std::atomic<uint64_t> readDone{0};
        /**
         * Simulated time the shard's request path is busy until
         * (latency model): synchronous fills occupy the backend, so
         * later timestamped arrivals queue behind them. Misses store
         * it under the mutex; lock-free timed hits only read.
         */
        std::atomic<double> busyUntilNs{0.0};
        /**
         * Recent non-bulk request latencies served by this shard
         * (timestamped requests only) — the placement/migration load
         * signal. Internally lock-free.
         */
        RecentLatencyWindow recent;
        /**
         * Decaying max of the non-bulk modelled latencies — the
         * admission gate's congestion memory. Unlike `recent`, it is
         * never cleared by a full top-up; it only ages out through
         * per-sample and per-admissionTick decay
         * (AdmissionConfig::tailDecayPerSample).
         */
        std::atomic<double> decayedTailNs{0.0};
        /**
         * Per-priority end-to-end latency distributions, sharded so
         * the timed path never crosses a service-global lock;
         * latencySnapshot() merges them across shards.
         */
        std::array<LatencyDistribution, 3> latencyByClass;
    };

    /**
     * The shard's backend chunk granularity, resolved lazily on
     * first use (Trng::preferredChunkBytes may run the backend's
     * one-time characterization); also sizes the ring storage.
     */
    size_t chunkLocked(Shard &shard) QUAC_REQUIRES(shard.mutex);

    /** Buffered, unclaimed bytes (tail - claim); wait-free. */
    static size_t levelOf(const Shard &shard);

    /**
     * Claim and copy up to @p len buffered bytes. Lock-free: callers
     * on the hit path hold no lock; the mutex-held slow paths use
     * the same claim protocol and race concurrent lock-free readers
     * benignly. With @p all_or_nothing only a full @p len is ever
     * claimed (the miss path claims nothing and completes under the
     * mutex instead of splitting a request across the fence).
     * Returns bytes copied.
     */
    size_t ringTake(Shard &shard, uint8_t *out, size_t len,
                    bool all_or_nothing);

    /** Discard the buffered bytes (claim -> tail); shard mutex
     * held. Returns the bytes dropped. */
    size_t ringFlushLocked(Shard &shard)
        QUAC_REQUIRES(shard.mutex);

    /**
     * Fence lock-free readers off the ring storage: bump the cursor
     * generation (every in-flight CAS fails over to the mutex),
     * wait for already-claimed copies to retire, then reset the
     * cursors to position 0. Shard mutex held, ring already
     * flushed. Only needed when the storage itself is about to be
     * replaced (chunk re-resolution after re-sourcing/retuning).
     */
    void ringResetLocked(Shard &shard)
        QUAC_REQUIRES(shard.mutex);

    /**
     * Pull @p want bytes from the backend into the ring, observing
     * them through the health monitor. Returns the bytes actually
     * admitted: 0 when the fill threw (caught and counted — the
     * shard keeps serving its buffered bytes) or when the bank was
     * detected unhealthy by this very pull (the bytes and the ring
     * are dropped and the shard re-sources).
     */
    size_t pullLocked(Shard &shard, size_t want)
        QUAC_REQUIRES(shard.mutex);

    /**
     * Catch up with quarantine/re-admission transitions (cheap
     * epoch check): a shard on a detected-unhealthy bank flushes its
     * ring and re-sources; a re-sourced shard whose home bank was
     * re-admitted returns home. Shard mutex held.
     */
    void revalidateLocked(Shard &shard)
        QUAC_REQUIRES(shard.mutex);

    /**
     * Move the shard off its current bank onto the servable bank
     * sourcing the fewest shards (ascending index tie-break, so
     * spare banks are preferred and the pick is deterministic).
     * Stays put when no alternative servable bank exists. Shard
     * mutex held, ring already flushed.
     */
    void resourceShardLocked(Shard &shard)
        QUAC_REQUIRES(shard.mutex);

    /** Rebind the shard to @p target (sourcing bookkeeping + lazy
     * chunk re-resolution). Shard mutex held, ring flushed. */
    void moveShardLocked(Shard &shard, size_t target)
        QUAC_REQUIRES(shard.mutex);

    /**
     * Complete a miss synchronously into @p out, re-sourcing away
     * from banks that throw or are detected unhealthy under the
     * fill; served bytes always come from a servable bank. Returns
     * false when no servable bank could produce the bytes (the
     * request is denied). Without health monitoring a backend
     * exception is retried (syncFillLegacyLocked) and then
     * propagates to the caller as before.
     */
    bool syncFillLocked(Shard &shard, uint8_t *out, size_t need)
        QUAC_REQUIRES(shard.mutex);

    /**
     * The health-off miss path: catch backend exceptions, count
     * them, retry up to cfg.syncFillRetries times with bounded
     * exponential backoff, then surface the last error.
     */
    bool syncFillLegacyLocked(Shard &shard, uint8_t *out,
                              size_t need)
        QUAC_REQUIRES(shard.mutex);

    /**
     * Deficit if the shard is at/below @p frac, rounded up to whole
     * backend chunks. Resolves the chunk lazily, and only when a
     * deficit exists.
     */
    size_t deficitLocked(Shard &shard, double frac)
        QUAC_REQUIRES(shard.mutex);

    /** Missing buffered bytes as a fraction of capacity (0..1);
     * wait-free (atomic cursor reads). */
    double deficitFraction(const Shard &shard) const;

    /** Queued modelled work in ns (busyUntilNs past the latest
     * modelled arrival, clamped at 0); wait-free. */
    double busyHorizonNs(const Shard &shard) const;

    /** Placement load score; wait-free. */
    double loadOf(const Shard &shard) const;

    /** Top one shard up to capacity; returns bytes added. */
    size_t refillShard(Shard &shard);

    /**
     * Serve one request. @p arrival_ns is the simulated arrival time
     * of a timestamped request; NaN disables the latency model (the
     * untimed path).
     */
    RequestResult requestOn(Client::State &client, uint8_t *out,
                            size_t len, double arrival_ns);

    /**
     * Shared request epilogue for the lock-free and mutex serve
     * paths: the unhealthy-serve tripwire, the modelled-latency
     * bookkeeping (timed requests), and the per-client stat
     * accumulators. Takes no lock.
     */
    RequestResult finishRequest(Client::State &client, Shard &shard,
                                RequestResult result,
                                size_t synchronous_bytes,
                                double arrival_ns);

    EntropyServiceConfig cfg_;
    /** The backend pool (not owned); re-sourcing picks from here. */
    std::vector<core::Trng *> backends_;
    std::vector<std::unique_ptr<Shard>> shards_;
    /** One lock per backend: shards sharing a backend serialize.
     * Lock order: Shard::mutex -> backend lock -> monitor mutex. */
    std::vector<std::unique_ptr<Mutex>> backendLocks_;

    /** Null unless cfg.health.enabled. */
    std::unique_ptr<HealthMonitor> monitor_;
    /** Guards sourcingCount_ and the donor pick (never nested
     * inside a backend lock). */
    Mutex sourcingMutex_;
    /** Shards currently sourced from each bank. */
    std::vector<size_t> sourcingCount_
        QUAC_GUARDED_BY(sourcingMutex_);
    /**
     * Bumped on every monitor state transition; shards compare it
     * against their seenEpoch under their own lock (revalidateLocked)
     * so quarantine reactions never need cross-shard locking.
     */
    std::atomic<uint64_t> resourceEpoch_{0};
    std::atomic<uint64_t> refillFailures_{0};
    std::atomic<uint64_t> unhealthyBytesDropped_{0};
    std::atomic<uint64_t> unhealthyBytesServed_{0};
    std::atomic<uint64_t> resourcings_{0};
    std::atomic<uint64_t> suspectBytesDropped_{0};

    /** Guards the registry only; mutable so the aggregate-stat sums
     * (over per-client accumulators) stay const. */
    mutable Mutex clientsMutex_;
    std::vector<std::unique_ptr<Client::State>> clients_
        QUAC_GUARDED_BY(clientsMutex_);
    size_t nextShard_ QUAC_GUARDED_BY(clientsMutex_) = 0;

    /** One connect parked by admission control. */
    struct PendingConnect
    {
        std::string name;
        Priority priority = Priority::Bulk;
        size_t shard = autoShard;
        /** admissionTick() index before which no retry happens. */
        uint64_t notBeforeTick = 0;
        /** Current backoff (doubles per failed retry, bounded). */
        uint32_t backoffTicks = 1;
    };

    /** Guards the admission queue and counters. Never held across
     * connect() (clientsMutex_) or shard locks: the headroom probe
     * runs before it is taken, and admit/admissionTick release it
     * around the actual connect. */
    mutable Mutex admissionMutex_;
    std::deque<PendingConnect> admissionQueue_
        QUAC_GUARDED_BY(admissionMutex_);
    uint64_t admissionTickIndex_ QUAC_GUARDED_BY(admissionMutex_) = 0;
    AdmissionStats admissionStats_ QUAC_GUARDED_BY(admissionMutex_);

    std::atomic<uint64_t> refills_{0};
    std::atomic<uint64_t> bytesRefilled_{0};

    /** Installed sync-fill rate; 0 = use cfg_.latency default. */
    std::atomic<double> missNsPerByte_{0.0};

    /**
     * Latest modelled arrival timestamp seen by any timed request —
     * the load score's "now": a shard's queued-work horizon is
     * busyUntilNs minus this (clamped at 0). Monotonic CAS-max.
     */
    std::atomic<double> latestArrivalNs_{0.0};

    /** Guards the refillThread_ object itself (start/stop/running);
     * refillMutex_ only covers the worker's stop-flag wait. */
    mutable Mutex refillControlMutex_;
    std::thread refillThread_ QUAC_GUARDED_BY(refillControlMutex_);
    Mutex refillMutex_;
    CondVar refillCv_;
    bool stopRefill_ QUAC_GUARDED_BY(refillMutex_) = false;
};

} // namespace quac::service

#endif // QUAC_SERVICE_ENTROPY_SERVICE_HH

#include "service/refill_scheduler.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hh"

namespace quac::service
{

ShardPlacement
ShardPlacement::roundRobin(size_t shards, size_t channels)
{
    QUAC_ASSERT(channels >= 1, "channels=%zu", channels);
    ShardPlacement placement;
    placement.channelOfShard.resize(shards);
    for (size_t s = 0; s < shards; ++s)
        placement.channelOfShard[s] = s % channels;
    return placement;
}

std::vector<std::vector<size_t>>
ShardPlacement::byChannel(size_t channels) const
{
    std::vector<std::vector<size_t>> sets(channels);
    for (size_t s = 0; s < channelOfShard.size(); ++s) {
        QUAC_ASSERT(channelOfShard[s] < channels,
                    "shard %zu on channel %zu of %zu", s,
                    channelOfShard[s], channels);
        sets[channelOfShard[s]].push_back(s);
    }
    return sets;
}

const char *
rebalanceTriggerName(RebalanceTrigger trigger)
{
    switch (trigger) {
    case RebalanceTrigger::GrantRatio: return "grant-ratio";
    case RebalanceTrigger::ShardLatency: return "shard-latency";
    }
    return "?";
}

void
RefillAccounting::accumulate(const RefillAccounting &tick)
{
    ticks += tick.ticks;
    modeledNs += tick.modeledNs;
    neededNs += tick.neededNs;
    grantedNs += tick.grantedNs;
    usableIdleNs += tick.usableIdleNs;
    stolenBusyNs += tick.stolenBusyNs;
    busyNs += tick.busyNs;
    bytesRequested += tick.bytesRequested;
    bytesRefilled += tick.bytesRefilled;
}

MultiChannelRefillScheduler::MultiChannelRefillScheduler(
    EntropyService &service,
    std::vector<sysperf::WorkloadProfile> per_channel_demand,
    MultiChannelRefillConfig cfg, ShardPlacement placement)
    : service_(service), demand_(std::move(per_channel_demand)),
      cfg_(cfg), placement_(std::move(placement))
{
    uint32_t channels = cfg_.topology.channels;
    QUAC_ASSERT(channels >= 1, "channels=%u", channels);
    QUAC_ASSERT(cfg_.tickNs > 0.0, "tickNs=%f", cfg_.tickNs);
    if (demand_.size() == 1 && channels > 1)
        demand_.resize(channels, demand_.front());
    if (demand_.size() != channels)
        fatal("refill scheduler: %zu demand profiles for %u channels",
              demand_.size(), channels);

    if (cfg_.channelPolicies.empty())
        policies_.assign(channels, cfg_.policy);
    else if (cfg_.channelPolicies.size() == channels)
        policies_ = cfg_.channelPolicies;
    else
        fatal("refill scheduler: %zu channel policies for %u channels",
              cfg_.channelPolicies.size(), channels);

    if (placement_.channelOfShard.empty())
        placement_ =
            ShardPlacement::roundRobin(service_.shardCount(), channels);
    if (placement_.shards() != service_.shardCount())
        fatal("placement covers %zu shards, service has %zu",
              placement_.shards(), service_.shardCount());
    shardsOf_ = placement_.byChannel(channels);
    starved_.assign(placement_.shards(), 0);
    cooldownUntil_.assign(placement_.shards(), 0);
    channelTotals_.resize(channels);
    channelDown_.assign(channels, 0);
    failoverHome_.assign(placement_.shards(), npos_);
    escalated_.assign(channels, 0);
    if (cfg_.sloEscalation && cfg_.escalateSloNs <= 0.0)
        fatal("escalation SLO must be > 0 ns");

    // One BusScheduler probe per channel timing; identical channels
    // share one simulation.
    costs_.reserve(channels);
    if (!cfg_.topology.heterogeneous()) {
        sched::RefillCost cost =
            sched::quacRefillCost(cfg_.topology, 0, cfg_.schedule);
        costs_.assign(channels, cost);
    } else {
        for (uint32_t c = 0; c < channels; ++c)
            costs_.push_back(
                sched::quacRefillCost(cfg_.topology, c, cfg_.schedule));
    }
    for (const sched::RefillCost &cost : costs_) {
        QUAC_ASSERT(cost.iterationNs > 0.0 &&
                    cost.bitsPerIteration > 0.0,
                    "refill cost probe failed");
    }
    if (cfg_.installLatencyCost)
        service_.setMissLatencyNsPerByte(costs_[0].nsPerByte());
}

RefillAccounting
MultiChannelRefillScheduler::tick()
{
    size_t channels = costs_.size();
    RefillAccounting aggregate;
    aggregate.ticks = 1;

    // Health control loop rides the refill cadence: propagate any
    // pending quarantine/re-admission to the shards (flush +
    // re-source) and advance probation sampling before measuring
    // demand, so a just-re-sourced shard's deficit is refilled from
    // its new bank this very tick. No-op when health is disabled.
    service_.healthTick();

    std::vector<double> grant_ratio(channels, 1.0);
    std::vector<double> headroom_ns(channels, 0.0);

    for (size_t c = 0; c < channels; ++c) {
        if (channelDown_[c]) {
            // A failed channel models no usable window: no demand
            // measurement, no grant, no refill. Time still passes
            // (modeledNs) so rate metrics stay honest, and a zero
            // grant ratio charges starved ticks to any shards still
            // stranded on it (no servable channel was left to take
            // them), keeping the starvation visible.
            RefillAccounting down;
            down.ticks = 1;
            down.modeledNs = cfg_.tickNs;
            channelTotals_[c].accumulate(down);
            down.ticks = 0;
            aggregate.accumulate(down);
            grant_ratio[c] = 0.0;
            headroom_ns[c] = -1.0; // never a rebalance destination
            escalated_[c] = 0;
            continue;
        }
        double ns_per_byte = costs_[c].nsPerByte();

        // SLO escalation: a channel whose clients measurably breach
        // arbitrates this tick under rng-priority, reverting as soon
        // as the breach clears.
        sysperf::FairnessPolicy policy = policies_[c];
        if (cfg_.sloEscalation) {
            escalated_[c] = channelBreaching(c) ? 1 : 0;
            if (escalated_[c]) {
                policy = sysperf::FairnessPolicy::RngPriority;
                ++escalatedTicks_;
            }
        }

        // What this channel's shards would actually pull
        // (chunk-rounded), and the part below the panic watermark
        // that BufferedFair escalates — read as one snapshot so
        // urgent <= total even while clients drain concurrently.
        EntropyService::RefillDemand demand =
            service_.refillDemand(shardsOf_[c]);
        double needed_ns =
            static_cast<double>(demand.bytes) * ns_per_byte;
        double urgent_ns =
            static_cast<double>(demand.urgentBytes) * ns_per_byte;

        // This tick's slice of the channel's co-running demand
        // traffic. Channel 0 reproduces the original single-channel
        // seed stream exactly.
        uint64_t tick_seed = cfg_.seed;
        tick_seed ^= 0x9E3779B97F4A7C15ULL * (tickIndex_ + 1);
        tick_seed += 0xC2B2AE3D27D4EB4FULL * c;
        sysperf::ChannelActivity activity =
            sysperf::ChannelActivity::generate(demand_[c], cfg_.tickNs,
                                               tick_seed);

        sysperf::RefillGrant grant = sysperf::grantRefill(
            activity, needed_ns, policy, urgent_ns,
            cfg_.reentryOverheadNs);

        size_t budget_bytes = static_cast<size_t>(
            std::floor(grant.grantedNs / ns_per_byte));
        size_t refilled =
            service_.refillTick(budget_bytes, shardsOf_[c]);

        RefillAccounting acct;
        acct.ticks = 1;
        acct.modeledNs = cfg_.tickNs;
        acct.neededNs = needed_ns;
        acct.grantedNs = grant.grantedNs;
        acct.usableIdleNs = grant.usableIdleNs;
        acct.stolenBusyNs = grant.stolenBusyNs;
        acct.busyNs = cfg_.tickNs * (1.0 - activity.idleFraction());
        acct.bytesRequested = demand.bytes;
        acct.bytesRefilled = refilled;

        channelTotals_[c].accumulate(acct);
        acct.ticks = 0; // aggregate counts the tick once
        aggregate.accumulate(acct);

        grant_ratio[c] =
            needed_ns > 0.0 ? grant.grantedNs / needed_ns : 1.0;
        headroom_ns[c] = grant.usableIdleNs - grant.grantedNs;
    }

    rebalanceAfterTick(grant_ratio, headroom_ns);

    total_.accumulate(aggregate);
    ++tickIndex_;
    return aggregate;
}

bool
MultiChannelRefillScheduler::shardStarvedThisTick(
    size_t shard, const std::vector<double> &grant_ratio)
{
    // Both triggers require outstanding demand: a topped-up shard is
    // never starved, whatever its channel granted or its clients
    // recently measured. The demand probe is one shard-lock
    // acquisition, so the cheap signal is checked first.
    if (cfg_.trigger == RebalanceTrigger::GrantRatio) {
        size_t channel = placement_.channelOfShard[shard];
        if (grant_ratio[channel] >= cfg_.starveGrantRatio)
            return false;
    } else {
        // Closed loop: the shard's clients measurably breach the
        // latency SLO — grant bookkeeping does not enter into it.
        if (service_.shardRecentP95Ns(shard) <= cfg_.rebalanceSloNs)
            return false;
    }
    std::vector<size_t> probe{shard};
    return service_.refillDemand(probe).bytes > 0;
}

void
MultiChannelRefillScheduler::rebalanceAfterTick(
    const std::vector<double> &grant_ratio,
    const std::vector<double> &headroom_ns)
{
    // The starvation counters are maintained even with rebalancing
    // off, so a study (or operator) can observe starvation it chose
    // not to fix. Under the grant-ratio trigger the common
    // fully-granted tick touches no shard at all.
    for (size_t s = 0; s < placement_.shards(); ++s) {
        if (shardStarvedThisTick(s, grant_ratio))
            ++starved_[s];
        else
            starved_[s] = 0;
    }
    if (!cfg_.rebalance)
        return;

    // Migrate persistent starvers to the channel with the most
    // unclaimed idle time this tick. Placement only redirects whose
    // granted time refills the shard; the shard keeps draining its
    // own backend stream, so its output bytes are unchanged.
    size_t best = 0;
    for (size_t c = 1; c < headroom_ns.size(); ++c) {
        if (headroom_ns[c] > headroom_ns[best])
            best = c;
    }
    // Anti-ping-pong: a destination that under-granted its own
    // shards this tick is no refuge — with every channel saturated,
    // shards stay put and keep accruing starved ticks instead of
    // bouncing between two channels that cannot serve them.
    if (headroom_ns[best] <= 0.0 ||
        grant_ratio[best] < cfg_.starveGrantRatio)
        return;
    bool moved = false;
    for (size_t s = 0; s < placement_.shards(); ++s) {
        if (starved_[s] < cfg_.starveTickThreshold)
            continue;
        if (placement_.channelOfShard[s] == best)
            continue; // nowhere better to go
        if (tickIndex_ < cooldownUntil_[s])
            continue; // recently moved; let the new channel work
        placement_.channelOfShard[s] = best;
        starved_[s] = 0;
        cooldownUntil_[s] = tickIndex_ + cfg_.migrateCooldownTicks;
        ++migrations_;
        moved = true;
    }
    if (moved)
        shardsOf_ = placement_.byChannel(costs_.size());
}

const RefillAccounting &
MultiChannelRefillScheduler::run(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        tick();
    return total_;
}

const RefillAccounting &
MultiChannelRefillScheduler::channelTotal(size_t channel) const
{
    QUAC_ASSERT(channel < channelTotals_.size(), "channel=%zu",
                channel);
    return channelTotals_[channel];
}

const sched::RefillCost &
MultiChannelRefillScheduler::iterationCost(size_t channel) const
{
    QUAC_ASSERT(channel < costs_.size(), "channel=%zu", channel);
    return costs_[channel];
}

sysperf::FairnessPolicy
MultiChannelRefillScheduler::channelPolicy(size_t channel) const
{
    QUAC_ASSERT(channel < policies_.size(), "channel=%zu", channel);
    return escalated_[channel]
               ? sysperf::FairnessPolicy::RngPriority
               : policies_[channel];
}

bool
MultiChannelRefillScheduler::channelBreaching(size_t channel)
{
    for (size_t s : shardsOf_[channel]) {
        if (service_.shardRecentP95Ns(s) <= cfg_.escalateSloNs)
            continue;
        // Breach without demand is stale history (e.g. the window
        // has not aged out yet); escalating would steal demand
        // bandwidth for nothing.
        std::vector<size_t> probe{s};
        if (service_.refillDemand(probe).bytes > 0)
            return true;
    }
    return false;
}

bool
MultiChannelRefillScheduler::channelEscalated(size_t channel) const
{
    QUAC_ASSERT(channel < escalated_.size(), "channel=%zu", channel);
    return escalated_[channel] != 0;
}

void
MultiChannelRefillScheduler::failChannel(size_t channel)
{
    QUAC_ASSERT(channel < costs_.size(), "channel=%zu", channel);
    if (channelDown_[channel])
        return;
    channelDown_[channel] = 1;
    escalated_[channel] = 0;
    // Count shards per servable channel once, then place the failed
    // channel's shards one at a time onto the least-occupied one
    // (ascending tie-break): deterministic, and spreads a big
    // channel's load instead of dumping it on a single survivor.
    std::vector<size_t> occupancy(costs_.size(), 0);
    for (size_t s = 0; s < placement_.shards(); ++s)
        ++occupancy[placement_.channelOfShard[s]];
    for (size_t s = 0; s < placement_.shards(); ++s) {
        if (placement_.channelOfShard[s] != channel)
            continue;
        size_t best = npos_;
        size_t best_count = std::numeric_limits<size_t>::max();
        for (size_t c = 0; c < costs_.size(); ++c) {
            if (channelDown_[c])
                continue;
            if (occupancy[c] < best_count) {
                best = c;
                best_count = occupancy[c];
            }
        }
        if (best == npos_)
            continue; // every channel down: stay, starve visibly
        // Remember the failure home only if the shard is not already
        // displaced by an earlier (still unrecovered) failure.
        if (failoverHome_[s] == npos_)
            failoverHome_[s] = channel;
        placement_.channelOfShard[s] = best;
        --occupancy[channel];
        ++occupancy[best];
        starved_[s] = 0;
        ++failovers_;
    }
    shardsOf_ = placement_.byChannel(costs_.size());
}

void
MultiChannelRefillScheduler::recoverChannel(size_t channel)
{
    QUAC_ASSERT(channel < costs_.size(), "channel=%zu", channel);
    if (!channelDown_[channel])
        return;
    channelDown_[channel] = 0;
    // Shards displaced by THIS channel's failure return home; shards
    // the rebalancer moved for its own reasons are its business and
    // stay where it put them.
    bool moved = false;
    for (size_t s = 0; s < placement_.shards(); ++s) {
        if (failoverHome_[s] != channel)
            continue;
        placement_.channelOfShard[s] = channel;
        failoverHome_[s] = npos_;
        starved_[s] = 0;
        // Cooldown against an immediate rebalance bounce: give the
        // recovered channel a window to prove itself.
        cooldownUntil_[s] = tickIndex_ + cfg_.migrateCooldownTicks;
        ++failbacks_;
        moved = true;
    }
    if (moved)
        shardsOf_ = placement_.byChannel(costs_.size());
}

bool
MultiChannelRefillScheduler::channelFailed(size_t channel) const
{
    QUAC_ASSERT(channel < channelDown_.size(), "channel=%zu",
                channel);
    return channelDown_[channel] != 0;
}

size_t
MultiChannelRefillScheduler::failedChannelCount() const
{
    size_t count = 0;
    for (uint8_t down : channelDown_)
        count += down;
    return count;
}

uint32_t
MultiChannelRefillScheduler::starvedTicks(size_t shard) const
{
    QUAC_ASSERT(shard < starved_.size(), "shard=%zu", shard);
    return starved_[shard];
}

namespace
{

MultiChannelRefillConfig
singleChannelConfig(const RefillSchedulerConfig &cfg)
{
    MultiChannelRefillConfig mcfg;
    mcfg.topology = sched::ChannelTopology::single(cfg.timing);
    mcfg.policy = cfg.policy;
    mcfg.tickNs = cfg.tickNs;
    mcfg.reentryOverheadNs = cfg.reentryOverheadNs;
    mcfg.seed = cfg.seed;
    mcfg.schedule = cfg.schedule;
    return mcfg;
}

} // anonymous namespace

RefillScheduler::RefillScheduler(EntropyService &service,
                                 const sysperf::WorkloadProfile &demand,
                                 RefillSchedulerConfig cfg)
    : pool_(service, {demand}, singleChannelConfig(cfg))
{
}

} // namespace quac::service

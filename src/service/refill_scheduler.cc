#include "service/refill_scheduler.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace quac::service
{

RefillScheduler::RefillScheduler(EntropyService &service,
                                 const sysperf::WorkloadProfile &demand,
                                 RefillSchedulerConfig cfg)
    : service_(service), demand_(demand), cfg_(cfg),
      cost_(sched::quacRefillCost(cfg_.timing, cfg_.schedule))
{
    QUAC_ASSERT(cfg_.tickNs > 0.0, "tickNs=%f", cfg_.tickNs);
    QUAC_ASSERT(cost_.iterationNs > 0.0 && cost_.bitsPerIteration > 0.0,
                "refill cost probe failed");
}

RefillAccounting
RefillScheduler::tick()
{
    double ns_per_byte = cost_.nsPerByte();

    // What the shards would actually pull (chunk-rounded), and the
    // part below the panic watermark that BufferedFair escalates —
    // read as one snapshot so urgent <= total even while clients
    // drain concurrently.
    EntropyService::RefillDemand demand = service_.refillDemand();
    double needed_ns = static_cast<double>(demand.bytes) * ns_per_byte;
    double urgent_ns =
        static_cast<double>(demand.urgentBytes) * ns_per_byte;

    // This tick's slice of the co-running demand traffic.
    uint64_t tick_seed = cfg_.seed;
    tick_seed ^= 0x9E3779B97F4A7C15ULL * (tickIndex_ + 1);
    sysperf::ChannelActivity activity =
        sysperf::ChannelActivity::generate(demand_, cfg_.tickNs,
                                           tick_seed);

    sysperf::RefillGrant grant = sysperf::grantRefill(
        activity, needed_ns, cfg_.policy, urgent_ns,
        cfg_.reentryOverheadNs);

    size_t budget_bytes = static_cast<size_t>(
        std::floor(grant.grantedNs / ns_per_byte));
    size_t refilled = service_.refillTick(budget_bytes);

    RefillAccounting acct;
    acct.ticks = 1;
    acct.modeledNs = cfg_.tickNs;
    acct.neededNs = needed_ns;
    acct.grantedNs = grant.grantedNs;
    acct.usableIdleNs = grant.usableIdleNs;
    acct.stolenBusyNs = grant.stolenBusyNs;
    acct.busyNs = cfg_.tickNs * (1.0 - activity.idleFraction());
    acct.bytesRequested = demand.bytes;
    acct.bytesRefilled = refilled;

    total_.ticks += acct.ticks;
    total_.modeledNs += acct.modeledNs;
    total_.neededNs += acct.neededNs;
    total_.grantedNs += acct.grantedNs;
    total_.usableIdleNs += acct.usableIdleNs;
    total_.stolenBusyNs += acct.stolenBusyNs;
    total_.busyNs += acct.busyNs;
    total_.bytesRequested += acct.bytesRequested;
    total_.bytesRefilled += acct.bytesRefilled;
    ++tickIndex_;
    return acct;
}

const RefillAccounting &
RefillScheduler::run(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        tick();
    return total_;
}

} // namespace quac::service

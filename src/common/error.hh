/**
 * @file
 * Error-reporting helpers in the gem5 fatal()/panic() idiom.
 *
 * fatal() is for user-caused conditions (bad configuration, invalid
 * arguments); panic() is for internal invariant violations that should
 * never happen regardless of user input. Both throw exceptions rather
 * than aborting so that unit tests can assert on failure paths.
 */

#ifndef QUAC_COMMON_ERROR_HH
#define QUAC_COMMON_ERROR_HH

#include <cstdio>
#include <stdexcept>
#include <string>

namespace quac
{

/** Raised by fatal(): the simulation cannot continue due to user error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Raised by panic(): an internal invariant was violated (a bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg) {}
};

/**
 * Report a user-caused error and abort the current operation.
 * @param fmt printf-style format string.
 */
[[noreturn]] void fatal(const char *fmt, ...);

/**
 * Report an internal invariant violation (a simulator bug).
 * @param fmt printf-style format string.
 */
[[noreturn]] void panic(const char *fmt, ...);

/** Print an informational message to stderr. */
void inform(const char *fmt, ...);

/** Print a warning message to stderr. */
void warn(const char *fmt, ...);

/**
 * Implementation hook for QUAC_ASSERT: formats the condition text and
 * the user's printf-style detail message into one panic.
 */
[[noreturn]] void panicAssert(const char *cond, const char *fmt, ...);

/** panic() unless the condition holds. */
#define QUAC_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond))                                                        \
            ::quac::panicAssert(#cond, __VA_ARGS__);                        \
    } while (0)

} // namespace quac

#endif // QUAC_COMMON_ERROR_HH

#include "common/parallel.hh"

#include <atomic>
#include <thread>
#include <vector>

namespace quac
{

void
parallelFor(size_t begin, size_t end,
            const std::function<void(size_t)> &fn, unsigned threads)
{
    if (begin >= end)
        return;
    if (threads == 0)
        threads = std::thread::hardware_concurrency();
    size_t span = end - begin;
    if (threads <= 1 || span == 1) {
        for (size_t i = begin; i < end; ++i)
            fn(i);
        return;
    }
    threads = static_cast<unsigned>(
        std::min<size_t>(threads, span));

    std::atomic<size_t> next(begin);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&]() {
            for (;;) {
                size_t i = next.fetch_add(1);
                if (i >= end)
                    return;
                fn(i);
            }
        });
    }
    for (auto &worker : workers)
        worker.join();
}

} // namespace quac

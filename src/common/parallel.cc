#include "common/parallel.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace quac
{

void
parallelFor(size_t begin, size_t end,
            const std::function<void(size_t)> &fn, unsigned threads)
{
    if (begin >= end)
        return;
    if (threads == 0)
        threads = std::thread::hardware_concurrency();
    size_t span = end - begin;
    if (threads <= 1 || span == 1) {
        for (size_t i = begin; i < end; ++i)
            fn(i);
        return;
    }
    threads = static_cast<unsigned>(
        std::min<size_t>(threads, span));

    std::atomic<size_t> next(begin);
    std::atomic<bool> failed(false);
    std::exception_ptr error;
    std::mutex error_mutex;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&]() {
            for (;;) {
                if (failed.load(std::memory_order_relaxed))
                    return;
                size_t i = next.fetch_add(1);
                if (i >= end)
                    return;
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!error)
                        error = std::current_exception();
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        });
    }
    for (auto &worker : workers)
        worker.join();
    // Rethrow the first worker exception in the calling thread, so a
    // fatal() inside fn behaves like in the serial path instead of
    // calling std::terminate.
    if (error)
        std::rethrow_exception(error);
}

} // namespace quac

#include "common/parallel.hh"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"

namespace quac
{

void
parallelFor(size_t begin, size_t end,
            const std::function<void(size_t)> &fn, unsigned threads)
{
    if (begin >= end)
        return;
    if (threads == 0)
        threads = std::thread::hardware_concurrency();
    size_t span = end - begin;
    if (threads <= 1 || span == 1) {
        for (size_t i = begin; i < end; ++i)
            fn(i);
        return;
    }
    threads = static_cast<unsigned>(
        std::min<size_t>(threads, span));

    std::atomic<size_t> next(begin);
    std::atomic<bool> failed(false);
    // error is guarded by error_mutex until the joins below publish
    // it to this thread (GUARDED_BY does not apply to locals).
    Mutex error_mutex;
    std::exception_ptr error;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&]() {
            for (;;) {
                // relaxed: best-effort early exit; a worker that
                // misses the flag just runs one more iteration.
                if (failed.load(std::memory_order_relaxed))
                    return;
                size_t i = next.fetch_add(1);
                if (i >= end)
                    return;
                try {
                    fn(i);
                } catch (...) {
                    MutexLock lock(error_mutex);
                    if (!error)
                        error = std::current_exception();
                    // relaxed: the join below is what publishes
                    // `error` to the caller; the flag only trims work.
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        });
    }
    for (auto &worker : workers)
        worker.join();
    // Rethrow the first worker exception in the calling thread, so a
    // fatal() inside fn behaves like in the serial path instead of
    // calling std::terminate.
    if (error)
        std::rethrow_exception(error);
}

} // namespace quac

/**
 * @file
 * Deterministic token-bucket pacer.
 *
 * Time is supplied by the caller in nanoseconds (wall clock on the
 * network hot path, a synthetic clock in tests), so refill is exact
 * and replayable: same (rate, burst, call sequence) => same
 * decisions. A zero rate means unlimited — tryTake always succeeds —
 * so the disabled case costs one branch and no clock read.
 */

#ifndef QUAC_COMMON_TOKEN_BUCKET_HH
#define QUAC_COMMON_TOKEN_BUCKET_HH

#include <algorithm>
#include <cstdint>

namespace quac
{

/** Token bucket over a caller-supplied clock. */
class TokenBucket
{
  public:
    /** Unlimited (tryTake always succeeds). */
    TokenBucket() = default;

    /**
     * @param tokens_per_sec refill rate (<= 0 = unlimited).
     * @param burst bucket capacity; the bucket starts full. A
     *        non-positive burst with a positive rate falls back to
     *        one second's worth of tokens.
     */
    TokenBucket(double tokens_per_sec, double burst)
        : rate_(tokens_per_sec),
          burst_(burst > 0.0 ? burst : tokens_per_sec),
          tokens_(burst_)
    {
    }

    bool unlimited() const { return rate_ <= 0.0; }

    /**
     * Refill for the time elapsed since the previous call, then
     * take @p tokens if available. The first call anchors the
     * clock. @p now_ns must be monotonic; a backwards step refills
     * nothing (never throws tokens away).
     */
    bool tryTake(double tokens, uint64_t now_ns)
    {
        if (unlimited())
            return true;
        if (!primed_) {
            primed_ = true;
            lastNs_ = now_ns;
        }
        if (now_ns > lastNs_) {
            /* A huge clock jump (caller switched clock sources, or a
             * synthetic test clock leapt by ~2^63 ns) can make
             * rate * elapsed overflow to +inf, which would poison
             * tokens_ for every later arithmetic step. Any elapsed
             * span long enough to refill the whole bucket just
             * saturates at burst_ instead. */
            double const elapsed_ns =
                static_cast<double>(now_ns - lastNs_);
            double const full_refill_ns = burst_ / rate_ * 1e9;
            if (elapsed_ns >= full_refill_ns)
                tokens_ = burst_;
            else
                tokens_ = std::min(
                    burst_, tokens_ + rate_ * 1e-9 * elapsed_ns);
            lastNs_ = now_ns;
        }
        if (tokens_ < tokens)
            return false;
        tokens_ -= tokens;
        return true;
    }

    /**
     * Return @p tokens to the bucket (bounded by burst). Used to
     * refund a charge that a later gate rejected — e.g. a per-client
     * take undone because the global cap said no.
     */
    void credit(double tokens)
    {
        if (!unlimited())
            tokens_ = std::min(burst_, tokens_ + tokens);
    }

    /** Current level (burst_ before the first tryTake). */
    double tokens() const { return unlimited() ? 0.0 : tokens_; }

  private:
    double rate_ = 0.0;
    double burst_ = 0.0;
    double tokens_ = 0.0;
    uint64_t lastNs_ = 0;
    bool primed_ = false;
};

} // namespace quac

#endif // QUAC_COMMON_TOKEN_BUCKET_HH

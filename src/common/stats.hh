/**
 * @file
 * Small statistics helpers: running summaries and Shannon entropy.
 */

#ifndef QUAC_COMMON_STATS_HH
#define QUAC_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace quac
{

/** Accumulates count/mean/min/max/stddev of a stream of samples. */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    size_t count() const { return count_; }
    double mean() const;
    double min() const;
    double max() const;
    /** Sample variance (n-1 denominator); 0 when count < 2. */
    double variance() const;
    double stddev() const;

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Binary Shannon entropy H(p) in bits (Equation 1 of the paper with
 * p(x1)=p, p(x2)=1-p). Returns 0 for p outside (0, 1).
 */
double binaryEntropy(double p);

/**
 * Shannon entropy in bits of an empirical distribution given by raw
 * counts. Zero-count symbols contribute nothing.
 */
double shannonEntropy(const std::vector<size_t> &counts);

/** Arithmetic mean of a vector; 0 for empty input. */
double mean(const std::vector<double> &xs);

/** Population standard deviation of a vector; 0 for size < 2. */
double stddev(const std::vector<double> &xs);

/** Median (by copy-and-sort); 0 for empty input. */
double median(std::vector<double> xs);

} // namespace quac

#endif // QUAC_COMMON_STATS_HH

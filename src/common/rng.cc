#include "common/rng.hh"

#include <algorithm>
#include <cmath>

#include "common/vec_clones.hh"

namespace quac
{

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace
{

constexpr uint32_t philoxM0 = 0xD2511F53u;
constexpr uint32_t philoxM1 = 0xCD9E8D57u;
constexpr uint32_t philoxW0 = 0x9E3779B9u;
constexpr uint32_t philoxW1 = 0xBB67AE85u;

/** High 32 bits of a 32x32 multiply, with the low half via out-param. */
inline uint32_t
mulhilo(uint32_t a, uint32_t b, uint32_t &lo)
{
    uint64_t prod = static_cast<uint64_t>(a) * b;
    lo = static_cast<uint32_t>(prod);
    return static_cast<uint32_t>(prod >> 32);
}

} // anonymous namespace

Philox4x32::Philox4x32(uint64_t key)
    : keyX_(static_cast<uint32_t>(key)),
      keyY_(static_cast<uint32_t>(key >> 32))
{
}

Philox4x32::Block
Philox4x32::block(const Counter &ctr) const
{
    uint32_t x0 = ctr[0], x1 = ctr[1], x2 = ctr[2], x3 = ctr[3];
    uint32_t kx = keyX_, ky = keyY_;

    for (int round = 0; round < 10; ++round) {
        uint32_t lo0, lo1;
        uint32_t hi0 = mulhilo(philoxM0, x0, lo0);
        uint32_t hi1 = mulhilo(philoxM1, x2, lo1);
        uint32_t y0 = hi1 ^ x1 ^ kx;
        uint32_t y1 = lo1;
        uint32_t y2 = hi0 ^ x3 ^ ky;
        uint32_t y3 = lo0;
        x0 = y0;
        x1 = y1;
        x2 = y2;
        x3 = y3;
        kx += philoxW0;
        ky += philoxW1;
    }
    return Block{x0, x1, x2, x3};
}

namespace
{

/**
 * Bulk Philox core: n independent counters sharing key state, rounds
 * interleaved across a small block of lanes so the multiplies and
 * xors vectorize. Bit-identical to per-counter block() evaluation.
 */
QUAC_VEC_CLONES void
philoxBlocksKernel(uint32_t key_x, uint32_t key_y,
                   const Philox4x32::Counter &ctr0, size_t n,
                   uint32_t *out)
{
    constexpr size_t width = 16;
    uint32_t x0[width], x1[width], x2[width], x3[width];

    size_t i = 0;
    for (; i + width <= n; i += width) {
        for (size_t j = 0; j < width; ++j) {
            x0[j] = ctr0[0];
            x1[j] = ctr0[1];
            x2[j] = ctr0[2];
            x3[j] = ctr0[3] + static_cast<uint32_t>(i + j);
        }
        uint32_t kx = key_x, ky = key_y;
        for (int round = 0; round < 10; ++round) {
            for (size_t j = 0; j < width; ++j) {
                uint64_t prod0 =
                    static_cast<uint64_t>(philoxM0) * x0[j];
                uint64_t prod1 =
                    static_cast<uint64_t>(philoxM1) * x2[j];
                uint32_t y0 = static_cast<uint32_t>(prod1 >> 32) ^
                              x1[j] ^ kx;
                uint32_t y1 = static_cast<uint32_t>(prod1);
                uint32_t y2 = static_cast<uint32_t>(prod0 >> 32) ^
                              x3[j] ^ ky;
                uint32_t y3 = static_cast<uint32_t>(prod0);
                x0[j] = y0;
                x1[j] = y1;
                x2[j] = y2;
                x3[j] = y3;
            }
            kx += philoxW0;
            ky += philoxW1;
        }
        for (size_t j = 0; j < width; ++j) {
            uint32_t *dst = out + 4 * (i + j);
            dst[0] = x0[j];
            dst[1] = x1[j];
            dst[2] = x2[j];
            dst[3] = x3[j];
        }
    }
    for (; i < n; ++i) {
        uint32_t c0 = ctr0[0], c1 = ctr0[1], c2 = ctr0[2];
        uint32_t c3 = ctr0[3] + static_cast<uint32_t>(i);
        uint32_t kx = key_x, ky = key_y;
        for (int round = 0; round < 10; ++round) {
            uint64_t prod0 = static_cast<uint64_t>(philoxM0) * c0;
            uint64_t prod1 = static_cast<uint64_t>(philoxM1) * c2;
            uint32_t y0 = static_cast<uint32_t>(prod1 >> 32) ^ c1 ^ kx;
            uint32_t y1 = static_cast<uint32_t>(prod1);
            uint32_t y2 = static_cast<uint32_t>(prod0 >> 32) ^ c3 ^ ky;
            uint32_t y3 = static_cast<uint32_t>(prod0);
            c0 = y0;
            c1 = y1;
            c2 = y2;
            c3 = y3;
            kx += philoxW0;
            ky += philoxW1;
        }
        uint32_t *dst = out + 4 * i;
        dst[0] = c0;
        dst[1] = c1;
        dst[2] = c2;
        dst[3] = c3;
    }
}

} // anonymous namespace

void
Philox4x32::blocks(const Counter &ctr0, size_t n, uint32_t *out) const
{
    philoxBlocksKernel(keyX_, keyY_, ctr0, n, out);
}

double
Philox4x32::uniform(const Counter &ctr, unsigned lane) const
{
    Block b = block(ctr);
    // 2^-32 scaling; offset by half an ulp to stay inside [0, 1).
    return (b[lane & 3] + 0.5) * 0x1p-32;
}

double
Philox4x32::gaussian(const Counter &ctr, unsigned lane) const
{
    Block b = block(ctr);
    unsigned base = (lane & 1) * 2;
    double u1 = (b[base] + 0.5) * 0x1p-32;
    double u2 = (b[base + 1] + 0.5) * 0x1p-32;
    double r = std::sqrt(-2.0 * std::log(u1));
    return r * std::cos(2.0 * M_PI * u2);
}

namespace
{

inline uint64_t
rotl64(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Xoshiro256pp::Xoshiro256pp(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : state_)
        word = splitmix64(sm);
}

uint64_t
Xoshiro256pp::next()
{
    uint64_t result = rotl64(state_[0] + state_[3], 23) + state_[0];
    uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl64(state_[3], 45);

    return result;
}

double
Xoshiro256pp::uniform()
{
    return (next() >> 11) * 0x1p-53;
}

void
Xoshiro256pp::fillUniform(float *out, size_t n)
{
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        uint64_t v = next();
        out[i] = (static_cast<uint32_t>(v >> 32) >> 8) * 0x1p-24f;
        out[i + 1] = (static_cast<uint32_t>(v) >> 8) * 0x1p-24f;
    }
    if (i < n)
        out[i] = (static_cast<uint32_t>(next() >> 32) >> 8) * 0x1p-24f;
}

double
Xoshiro256pp::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Xoshiro256pp::uniformInt(uint64_t bound)
{
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (-bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Xoshiro256pp::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    while (u1 <= 0.0)
        u1 = uniform();
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    hasSpare_ = true;
    return r * std::cos(theta);
}

double
Xoshiro256pp::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

bool
Xoshiro256pp::bernoulli(double p)
{
    return uniform() < p;
}

} // namespace quac

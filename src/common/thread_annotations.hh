#pragma once
/*
 * Clang Thread Safety Analysis annotations + annotated lock types.
 *
 * Every mutex in the repo is a quac::Mutex and every guarded field
 * carries QUAC_GUARDED_BY(mutex); helpers that assume a lock is held
 * declare QUAC_REQUIRES(mutex).  Under Clang the annotations compile
 * to __attribute__((...)) and `-Wthread-safety -Werror=thread-safety`
 * (the CI `clang-thread-safety` job) turns every lock-discipline
 * violation into a build break.  Under GCC and other compilers the
 * macros expand to nothing and the wrappers behave exactly like the
 * std types they hold.
 *
 * Contributor rule: new mutexes must ship annotated.  Declare the
 * guarded fields with QUAC_GUARDED_BY, use MutexLock (never a naked
 * std::lock_guard on a quac::Mutex), and give `*Locked` helpers a
 * QUAC_REQUIRES clause.  tools/lint_repo.py rejects raw std::mutex in
 * src/service and src/net.
 *
 * Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
 */

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define QUAC_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define QUAC_THREAD_ANNOTATION__(x)
#endif

/* A type that acts as a capability (lock). */
#define QUAC_CAPABILITY(x) QUAC_THREAD_ANNOTATION__(capability(x))

/* RAII type that acquires a capability in its constructor and
 * releases it in its destructor. */
#define QUAC_SCOPED_CAPABILITY QUAC_THREAD_ANNOTATION__(scoped_lockable)

/* Field may only be accessed while holding the given capability. */
#define QUAC_GUARDED_BY(x) QUAC_THREAD_ANNOTATION__(guarded_by(x))

/* Pointer field whose pointee is protected by the capability. */
#define QUAC_PT_GUARDED_BY(x) QUAC_THREAD_ANNOTATION__(pt_guarded_by(x))

/* Function acquires/releases the capability (it must not be held on
 * entry / must be held on entry respectively). */
#define QUAC_ACQUIRE(...) \
    QUAC_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define QUAC_RELEASE(...) \
    QUAC_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define QUAC_TRY_ACQUIRE(...) \
    QUAC_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/* Caller must hold the capability when calling the function. */
#define QUAC_REQUIRES(...) \
    QUAC_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/* Caller must NOT hold the capability (deadlock prevention). */
#define QUAC_EXCLUDES(...) \
    QUAC_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/* Document lock-ordering constraints between mutexes. */
#define QUAC_ACQUIRED_BEFORE(...) \
    QUAC_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define QUAC_ACQUIRED_AFTER(...) \
    QUAC_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/* Assert at runtime that the capability is held (trusted by the
 * analysis). */
#define QUAC_ASSERT_CAPABILITY(x) \
    QUAC_THREAD_ANNOTATION__(assert_capability(x))

/* Function returns a reference to the given capability. */
#define QUAC_RETURN_CAPABILITY(x) \
    QUAC_THREAD_ANNOTATION__(lock_returned(x))

/* Escape hatch.  Policy (enforced by tools/lint_repo.py): only the
 * lock-free ring internals may use it, and every use carries a
 * one-line justification comment.  Currently zero uses exist. */
#define QUAC_NO_THREAD_SAFETY_ANALYSIS \
    QUAC_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace quac {

/*
 * Annotated std::mutex.  Identical layout and cost; the CAPABILITY
 * attribute is what lets Clang track which lock protects which field.
 */
class QUAC_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() QUAC_ACQUIRE() { mu_.lock(); }
    void unlock() QUAC_RELEASE() { mu_.unlock(); }
    bool try_lock() QUAC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

    /* For interop with std wait primitives inside this header only. */
    std::mutex &native() { return mu_; }

private:
    std::mutex mu_;
};

/*
 * Scoped lock for Mutex (the MutexLocker pattern from the Clang
 * docs).  Supports temporary manual unlock()/lock() so code can drop
 * a lock across a blocking call and re-acquire it, with the analysis
 * tracking the capability the whole way.
 */
class QUAC_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex &m) QUAC_ACQUIRE(m) : mu_(m), held_(true)
    {
        mu_.lock();
    }

    ~MutexLock() QUAC_RELEASE()
    {
        if (held_)
            mu_.unlock();
    }

    /* Temporarily release the mutex mid-scope. */
    void unlock() QUAC_RELEASE()
    {
        mu_.unlock();
        held_ = false;
    }

    /* Re-acquire after a manual unlock(). */
    void lock() QUAC_ACQUIRE()
    {
        mu_.lock();
        held_ = true;
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

private:
    Mutex &mu_;
    bool held_;
};

/*
 * Condition variable usable with Mutex.  Only the timed, predicate-
 * free wait is exposed: predicate lambdas cannot carry REQUIRES
 * clauses, so callers re-check their (guarded) predicate in a loop
 * around waitFor() instead, which the analysis can follow.
 */
class CondVar {
public:
    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

    /* Atomically releases `m`, waits up to `timeout` (or a notify),
     * and re-acquires `m` before returning. */
    template <class Rep, class Period>
    void waitFor(Mutex &m,
                 const std::chrono::duration<Rep, Period> &timeout)
        QUAC_REQUIRES(m)
    {
        LockRef ref{m};
        cv_.wait_for(ref, timeout);
    }

private:
    /* BasicLockable adapter so condition_variable_any can unlock and
     * re-lock the annotated mutex.  The ACQUIRE/RELEASE annotations
     * keep the analysis's view of `m` consistent across the wait. */
    struct LockRef {
        Mutex &m;
        void lock() QUAC_ACQUIRE(m) { m.lock(); }
        void unlock() QUAC_RELEASE(m) { m.unlock(); }
    };

    std::condition_variable_any cv_;
};

} // namespace quac

#include "common/bitstream.hh"

#include <algorithm>
#include <bit>

#include "common/error.hh"

namespace quac
{

Bitstream::Bitstream(size_t nbits)
    : words_((nbits + 63) / 64, 0), size_(nbits)
{
}

Bitstream
Bitstream::fromString(const std::string &bits)
{
    Bitstream bs;
    for (char c : bits) {
        if (c == '0') {
            bs.append(false);
        } else if (c == '1') {
            bs.append(true);
        } else {
            fatal("Bitstream::fromString: invalid character '%c'", c);
        }
    }
    return bs;
}

Bitstream
Bitstream::fromBytes(const std::vector<uint8_t> &bytes)
{
    Bitstream bs;
    bs.appendBytes(bytes.data(), bytes.size() * 8);
    return bs;
}

void
Bitstream::append(bool bit)
{
    size_t word = size_ / 64;
    unsigned offset = size_ % 64;
    if (offset == 0)
        words_.push_back(0);
    if (bit)
        words_[word] |= (uint64_t{1} << offset);
    ++size_;
}

void
Bitstream::appendWord(uint64_t word, unsigned nbits)
{
    QUAC_ASSERT(nbits <= 64, "nbits=%u", nbits);
    if (nbits == 0)
        return;
    if (nbits < 64)
        word &= (uint64_t{1} << nbits) - 1;

    unsigned offset = size_ % 64;
    if (offset == 0) {
        words_.push_back(word);
    } else {
        words_.back() |= word << offset;
        if (offset + nbits > 64)
            words_.push_back(word >> (64 - offset));
    }
    size_ += nbits;
}

void
Bitstream::appendWords(const uint64_t *words, size_t nbits)
{
    size_t full = nbits / 64;
    unsigned tail = nbits % 64;
    words_.reserve((size_ + nbits + 63) / 64);
    if (size_ % 64 == 0) {
        words_.insert(words_.end(), words, words + full);
        size_ += full * 64;
    } else {
        for (size_t i = 0; i < full; ++i)
            appendWord(words[i], 64);
    }
    if (tail != 0)
        appendWord(words[full], tail);
}

void
Bitstream::appendBytes(const uint8_t *bytes, size_t nbits)
{
    size_t consumed = 0;
    while (consumed < nbits) {
        unsigned chunk =
            static_cast<unsigned>(std::min<size_t>(64, nbits - consumed));
        uint64_t word = 0;
        for (unsigned b = 0; b * 8 < chunk; ++b) {
            word |= static_cast<uint64_t>(bytes[(consumed + b * 8) / 8])
                    << (8 * b);
        }
        appendWord(word, chunk);
        consumed += chunk;
    }
}

void
Bitstream::append(const Bitstream &other)
{
    for (size_t i = 0; i < other.size(); ++i)
        append(other[i]);
}

bool
Bitstream::operator[](size_t index) const
{
    QUAC_ASSERT(index < size_, "index=%zu size=%zu", index, size_);
    return (words_[index / 64] >> (index % 64)) & 1;
}

void
Bitstream::set(size_t index, bool bit)
{
    QUAC_ASSERT(index < size_, "index=%zu size=%zu", index, size_);
    uint64_t mask = uint64_t{1} << (index % 64);
    if (bit)
        words_[index / 64] |= mask;
    else
        words_[index / 64] &= ~mask;
}

void
Bitstream::clear()
{
    words_.clear();
    size_ = 0;
}

size_t
Bitstream::popcount() const
{
    size_t count = 0;
    for (size_t w = 0; w + 1 < words_.size(); ++w)
        count += static_cast<size_t>(std::popcount(words_[w]));
    if (!words_.empty()) {
        unsigned tail = size_ % 64;
        uint64_t last = words_.back();
        if (tail != 0)
            last &= (uint64_t{1} << tail) - 1;
        count += static_cast<size_t>(std::popcount(last));
    }
    return count;
}

Bitstream
Bitstream::slice(size_t start, size_t len) const
{
    QUAC_ASSERT(start + len <= size_, "start=%zu len=%zu size=%zu",
                start, len, size_);
    Bitstream out;
    for (size_t i = 0; i < len; ++i)
        out.append((*this)[start + i]);
    return out;
}

std::vector<uint8_t>
Bitstream::toBytes() const
{
    std::vector<uint8_t> bytes((size_ + 7) / 8, 0);
    for (size_t i = 0; i < size_; ++i) {
        if ((*this)[i])
            bytes[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
    }
    return bytes;
}

std::string
Bitstream::toString() const
{
    std::string out;
    out.reserve(size_);
    for (size_t i = 0; i < size_; ++i)
        out.push_back((*this)[i] ? '1' : '0');
    return out;
}

bool
Bitstream::operator==(const Bitstream &other) const
{
    if (size_ != other.size_)
        return false;
    for (size_t i = 0; i < size_; ++i) {
        if ((*this)[i] != other[i])
            return false;
    }
    return true;
}

} // namespace quac

#include "common/error.hh"

#include <cstdarg>
#include <vector>

namespace quac
{

namespace
{

/** Format a printf-style message into a std::string. */
std::string
vformat(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(len));
}

} // anonymous namespace

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    throw FatalError("fatal: " + msg);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    throw PanicError("panic: " + msg);
}

void
panicAssert(const char *cond, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string detail = vformat(fmt, args);
    va_end(args);
    throw PanicError("panic: assertion '" + std::string(cond) +
                     "' failed: " + detail);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace quac

/**
 * @file
 * Fixed-width ASCII table printer used by the benchmark harnesses to
 * emit paper-versus-measured rows.
 */

#ifndef QUAC_COMMON_TABLE_HH
#define QUAC_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace quac
{

/** Builds and prints an aligned text table. */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Add a row; must have the same arity as the headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double value, int precision = 2);

    /** Render the whole table to a string. */
    std::string str() const;

    /** Print to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner ("=== title ===") to stdout. */
void printBanner(const std::string &title);

} // namespace quac

#endif // QUAC_COMMON_TABLE_HH

/**
 * @file
 * QUAC_VEC_CLONES: function attribute emitting AVX2/AVX-512 clones of
 * a hot loop, resolved at load time via ifunc, so the baseline binary
 * stays portable while vector-capable hosts get SIMD code. Expands to
 * nothing where unsupported (non-x86-64, non-ELF, or a compiler
 * without target_clones) and under the thread/address sanitizers,
 * whose runtimes are not initialized when the loader runs IRELATIVE
 * ifunc resolvers (instrumented binaries segfault at startup
 * otherwise).
 */

#ifndef QUAC_COMMON_VEC_CLONES_HH
#define QUAC_COMMON_VEC_CLONES_HH

/** Sanitizer detection: GCC defines __SANITIZE_*, Clang signals via
 * __has_feature. */
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define QUAC_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define QUAC_SANITIZED 1
#endif
#endif

#if defined(__x86_64__) && defined(__ELF__) && \
    defined(__has_attribute) && !defined(QUAC_SANITIZED)
#if __has_attribute(target_clones)
#define QUAC_VEC_CLONES \
    __attribute__((target_clones("default", "avx2", "avx512f")))
#endif
#endif
#ifndef QUAC_VEC_CLONES
#define QUAC_VEC_CLONES
#endif

#endif // QUAC_COMMON_VEC_CLONES_HH

/**
 * @file
 * Minimal data-parallel helper for characterization sweeps.
 */

#ifndef QUAC_COMMON_PARALLEL_HH
#define QUAC_COMMON_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace quac
{

/**
 * Run fn(i) for i in [begin, end) across worker threads. Blocks until
 * every index has completed. fn must be safe to call concurrently for
 * distinct indices. If fn throws, remaining indices are abandoned and
 * the first exception is rethrown in the calling thread.
 *
 * @param threads worker count; 0 selects the hardware concurrency.
 */
void parallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)> &fn,
                 unsigned threads = 0);

} // namespace quac

#endif // QUAC_COMMON_PARALLEL_HH

#include "common/table.hh"

#include <cstdio>
#include <sstream>

#include "common/error.hh"

namespace quac
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    QUAC_ASSERT(cells.size() == headers_.size(),
                "row arity %zu != header arity %zu",
                cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
Table::str() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            out << "| " << row[c]
                << std::string(widths[c] - row[c].size() + 1, ' ');
        }
        out << "|\n";
    };

    auto emit_rule = [&]() {
        for (size_t c = 0; c < widths.size(); ++c)
            out << "+" << std::string(widths[c] + 2, '-');
        out << "+\n";
    };

    emit_rule();
    emit_row(headers_);
    emit_rule();
    for (const auto &row : rows_)
        emit_row(row);
    emit_rule();
    return out.str();
}

void
Table::print() const
{
    std::fputs(str().c_str(), stdout);
}

void
printBanner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

} // namespace quac

/**
 * @file
 * Deterministic random-number sources used by the simulator.
 *
 * Two generators are provided:
 *
 *  - Philox4x32: a counter-based generator. Given the same key and
 *    counter it always produces the same block, which lets the DRAM
 *    model attach reproducible, randomly-accessible noise to any
 *    (module, segment, bitline, iteration) coordinate without storing
 *    per-coordinate state.
 *
 *  - Xoshiro256pp: a fast sequential generator for workloads that just
 *    need a stream (trace generation, Monte-Carlo sampling).
 *
 * These drive the *simulated physics* (thermal noise, process
 * variation). The TRNG-under-test observes them only through the DRAM
 * device model, mirroring how real hardware observes real noise.
 */

#ifndef QUAC_COMMON_RNG_HH
#define QUAC_COMMON_RNG_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace quac
{

/** SplitMix64 step; used to derive seeds/keys from a single seed. */
uint64_t splitmix64(uint64_t &state);

/**
 * Philox4x32-10 counter-based PRNG (Salmon et al., SC'11).
 *
 * Stateless apart from the key: block(counter) maps a 128-bit counter
 * to 128 bits of output through 10 rounds of multiply-bumped-key
 * mixing.
 */
class Philox4x32
{
  public:
    using Counter = std::array<uint32_t, 4>;
    using Block = std::array<uint32_t, 4>;

    /** Construct with a 64-bit key. */
    explicit Philox4x32(uint64_t key);

    /** Generate the 128-bit block for a counter value. */
    Block block(const Counter &ctr) const;

    /**
     * Bulk generation: the blocks of the @p n consecutive counters
     * {ctr0[0], ctr0[1], ctr0[2], ctr0[3] + i} for i in [0, n), with
     * the last lane wrapping modulo 2^32. Writes 4 * n words to
     * @p out, block i at out[4 * i .. 4 * i + 3], bit-identical to n
     * block() calls. Independent counters make the ten Philox rounds
     * vectorizable, which is what lets the variation oracle fill
     * whole per-row factor arrays at SIMD speed.
     */
    void blocks(const Counter &ctr0, size_t n, uint32_t *out) const;

    /** Convenience: block addressed by four 32-bit coordinates. */
    Block
    block(uint32_t a, uint32_t b, uint32_t c, uint32_t d) const
    {
        return block(Counter{a, b, c, d});
    }

    /** Uniform double in [0, 1) from one lane of a counter's block. */
    double uniform(const Counter &ctr, unsigned lane = 0) const;

    /**
     * Standard-normal sample addressed by counter (Box-Muller over
     * lanes 2·lane and 2·lane+1 of the block).
     *
     * @param ctr counter selecting the block.
     * @param lane 0 or 1, selecting which normal pair member.
     */
    double gaussian(const Counter &ctr, unsigned lane = 0) const;

  private:
    uint32_t keyX_;
    uint32_t keyY_;
};

/** xoshiro256++ sequential PRNG (Blackman & Vigna). */
class Xoshiro256pp
{
  public:
    /** Seed via four SplitMix64 draws. */
    explicit Xoshiro256pp(uint64_t seed);

    /** Next 64 random bits. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /**
     * Fill @p out with @p n uniform floats in [0, 1), 24 significant
     * bits each, two per next() call (high word then low word). The
     * bulk form advances the state by ceil(n / 2) steps; it is the
     * fast-path companion of uniform() for whole-row draws, not a
     * replay of the per-call double sequence.
     */
    void fillUniform(float *out, size_t n);

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, bound). @pre bound > 0. */
    uint64_t uniformInt(uint64_t bound);

    /** Standard-normal sample (Box-Muller, cached spare). */
    double gaussian();

    /** Normal sample with the given mean and standard deviation. */
    double gaussian(double mean, double sigma);

    /** Bernoulli draw with probability p of returning true. */
    bool bernoulli(double p);

  private:
    std::array<uint64_t, 4> state_;
    double spare_ = 0.0;
    bool hasSpare_ = false;
};

} // namespace quac

#endif // QUAC_COMMON_RNG_HH

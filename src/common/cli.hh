/**
 * @file
 * Minimal command-line flag parser shared by benches and examples.
 *
 * Supports "--name value", "--name=value" and boolean "--name" forms.
 * Unknown flags are fatal so typos do not silently fall back to
 * defaults.
 */

#ifndef QUAC_COMMON_CLI_HH
#define QUAC_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace quac
{

/** Parsed command-line flags with typed accessors and defaults. */
class CliArgs
{
  public:
    /**
     * Parse argv. @p known lists accepted flag names (without the
     * leading dashes); anything else is a fatal error.
     */
    CliArgs(int argc, const char *const *argv,
            const std::vector<std::string> &known);

    /** True if the flag appeared on the command line. */
    bool has(const std::string &name) const;

    /** Boolean flag: present (without value) or "true"/"1". */
    bool getBool(const std::string &name, bool def = false) const;

    /** Integer flag. */
    int64_t getInt(const std::string &name, int64_t def) const;

    /** Unsigned 64-bit flag. */
    uint64_t getUint(const std::string &name, uint64_t def) const;

    /** Floating-point flag. */
    double getDouble(const std::string &name, double def) const;

    /** String flag. */
    std::string getString(const std::string &name,
                          const std::string &def = "") const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace quac

#endif // QUAC_COMMON_CLI_HH

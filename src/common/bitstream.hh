/**
 * @file
 * Compact bit container used for TRNG output streams and NIST STS
 * inputs. Bits are stored LSB-first within 64-bit words.
 */

#ifndef QUAC_COMMON_BITSTREAM_HH
#define QUAC_COMMON_BITSTREAM_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace quac
{

/** Growable sequence of bits with O(1) append and random access. */
class Bitstream
{
  public:
    Bitstream() = default;

    /** Construct with a given number of zero bits. */
    explicit Bitstream(size_t nbits);

    /** Build from an ASCII string of '0'/'1' characters. */
    static Bitstream fromString(const std::string &bits);

    /** Build from raw bytes; each byte contributes 8 bits LSB-first. */
    static Bitstream fromBytes(const std::vector<uint8_t> &bytes);

    /** Append a single bit. */
    void append(bool bit);

    /** Append the low @p nbits bits of @p word, LSB-first. */
    void appendWord(uint64_t word, unsigned nbits);

    /**
     * Bulk append of @p nbits bits from @p words (LSB-first within
     * each word). When the stream is word-aligned this is a straight
     * word copy; otherwise each word is spliced across the boundary.
     */
    void appendWords(const uint64_t *words, size_t nbits);

    /** Bulk append of @p nbits bits from @p bytes, LSB-first. */
    void appendBytes(const uint8_t *bytes, size_t nbits);

    /** Append all bits of another stream. */
    void append(const Bitstream &other);

    /** Read the bit at @p index. @pre index < size(). */
    bool operator[](size_t index) const;

    /** Set the bit at @p index. @pre index < size(). */
    void set(size_t index, bool bit);

    /** Number of bits in the stream. */
    size_t size() const { return size_; }

    /** True if the stream holds no bits. */
    bool empty() const { return size_ == 0; }

    /** Remove all bits. */
    void clear();

    /** Number of one-bits in the stream. */
    size_t popcount() const;

    /** Extract bits [start, start+len) as a new stream. */
    Bitstream slice(size_t start, size_t len) const;

    /**
     * Pack into bytes, LSB-first within each byte; the final partial
     * byte (if any) is zero-padded.
     */
    std::vector<uint8_t> toBytes() const;

    /** Render as an ASCII string of '0'/'1' characters. */
    std::string toString() const;

    /** Bitwise equality (size and content). */
    bool operator==(const Bitstream &other) const;

  private:
    std::vector<uint64_t> words_;
    size_t size_ = 0;
};

} // namespace quac

#endif // QUAC_COMMON_BITSTREAM_HH

#include "common/cli.hh"

#include <algorithm>

#include "common/error.hh"

namespace quac
{

CliArgs::CliArgs(int argc, const char *const *argv,
                 const std::vector<std::string> &known)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected positional argument '%s'", arg.c_str());
        arg = arg.substr(2);

        std::string name;
        std::string value;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            // Consume a following non-flag token as the value.
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                value = "true";
            }
        }

        if (std::find(known.begin(), known.end(), name) == known.end())
            fatal("unknown flag '--%s'", name.c_str());
        values_[name] = value;
    }
}

bool
CliArgs::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

bool
CliArgs::getBool(const std::string &name, bool def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    return it->second == "true" || it->second == "1";
}

int64_t
CliArgs::getInt(const std::string &name, int64_t def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    return std::stoll(it->second);
}

uint64_t
CliArgs::getUint(const std::string &name, uint64_t def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    return std::stoull(it->second);
}

double
CliArgs::getDouble(const std::string &name, double def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    return std::stod(it->second);
}

std::string
CliArgs::getString(const std::string &name, const std::string &def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    return it->second;
}

} // namespace quac

#include "common/stats.hh"

#include <algorithm>
#include <cmath>

namespace quac
{

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    double delta = other.mean_ - mean_;
    size_t total = count_ + other.count_;
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    mean_ += delta * nb / static_cast<double>(total);
    m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(total);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ = total;
}

double
RunningStats::mean() const
{
    return count_ ? mean_ : 0.0;
}

double
RunningStats::min() const
{
    return count_ ? min_ : 0.0;
}

double
RunningStats::max() const
{
    return count_ ? max_ : 0.0;
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
binaryEntropy(double p)
{
    if (p <= 0.0 || p >= 1.0)
        return 0.0;
    return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

double
shannonEntropy(const std::vector<size_t> &counts)
{
    size_t total = 0;
    for (size_t c : counts)
        total += c;
    if (total == 0)
        return 0.0;
    double h = 0.0;
    for (size_t c : counts) {
        if (c == 0)
            continue;
        double p = static_cast<double>(c) / static_cast<double>(total);
        h -= p * std::log2(p);
    }
    return h;
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - m) * (x - m);
    return std::sqrt(ss / static_cast<double>(xs.size()));
}

double
median(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    size_t n = xs.size();
    if (n % 2 == 1)
        return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

} // namespace quac

#include "sched/channel_topology.hh"

#include "common/error.hh"

namespace quac::sched
{

ChannelTopology
ChannelTopology::single(const dram::TimingParams &t)
{
    ChannelTopology topology;
    topology.channels = 1;
    topology.timing = t;
    return topology;
}

const dram::TimingParams &
ChannelTopology::channelTiming(uint32_t channel) const
{
    QUAC_ASSERT(channel < channels, "channel %u of %u", channel,
                channels);
    if (channel < perChannelTiming.size())
        return perChannelTiming[channel];
    return timing;
}

BusScheduler
ChannelTopology::makeScheduler(uint32_t channel) const
{
    QUAC_ASSERT(banksPerChannel >= 1 && bankGroups >= 1 &&
                banksPerChannel % bankGroups == 0,
                "banks=%u groups=%u", banksPerChannel, bankGroups);
    return BusScheduler(channelTiming(channel), banksPerChannel,
                        bankGroups);
}

} // namespace quac::sched

#include "sched/bus_scheduler.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace quac::sched
{

BusScheduler::BusScheduler(const dram::TimingParams &timing,
                           uint32_t banks, uint32_t bank_groups)
    : timing_(timing), bankGroups_(bank_groups), banks_(banks),
      lastActPerGroup_(bank_groups, -1.0e18)
{
    QUAC_ASSERT(banks > 0 && bank_groups > 0, "banks=%u groups=%u",
                banks, bank_groups);
}

int64_t
BusScheduler::clockIndex(double t) const
{
    return static_cast<int64_t>(
        std::ceil(t / timing_.tCK - 1e-9));
}

bool
BusScheduler::slotFree(double t) const
{
    return usedSlots_.count(clockIndex(t)) == 0;
}

double
BusScheduler::claimCmdSlot(double earliest)
{
    int64_t slot = clockIndex(earliest);
    while (usedSlots_.count(slot))
        ++slot;
    usedSlots_.insert(slot);
    double t = slot * timing_.tCK;
    lastCmd_ = std::max(lastCmd_, t);
    return t;
}

double
BusScheduler::actConstraint(uint32_t bank, double t) const
{
    uint32_t group = bank % bankGroups_;
    t = std::max(t, lastActAny_ + timing_.tRRD_S);
    t = std::max(t, lastActPerGroup_[group] + timing_.tRRD_L);
    if (actWindow_.size() >= 4)
        t = std::max(t, actWindow_[actWindow_.size() - 4] +
                            timing_.tFAW);
    return t;
}

void
BusScheduler::recordAct(uint32_t bank, double t)
{
    uint32_t group = bank % bankGroups_;
    lastActAny_ = std::max(lastActAny_, t);
    lastActPerGroup_[group] = std::max(lastActPerGroup_[group], t);
    actWindow_.push_back(t);
    while (actWindow_.size() > 8)
        actWindow_.pop_front();
}

void
BusScheduler::recordCommand(dram::CommandType type)
{
    ++commandCount_;
    switch (type) {
    case dram::CommandType::ACT: ++actCount_; break;
    case dram::CommandType::PRE: ++preCount_; break;
    case dram::CommandType::RD: ++readCount_; break;
    case dram::CommandType::WR: ++writeCount_; break;
    }
}

double
BusScheduler::issueAct(uint32_t bank, double earliest)
{
    QUAC_ASSERT(bank < banks_.size(), "bank=%u", bank);
    BankState &state = banks_[bank];
    double t = std::max(earliest, state.actReady);
    t = actConstraint(bank, t);
    // Claiming a slot may push t later; re-check ACT pacing after.
    for (;;) {
        double slot_t = claimCmdSlot(t);
        double constrained = actConstraint(bank, slot_t);
        if (constrained <= slot_t + 1e-9) {
            t = slot_t;
            break;
        }
        usedSlots_.erase(clockIndex(slot_t));
        t = constrained;
    }
    recordAct(bank, t);
    recordCommand(dram::CommandType::ACT);
    state.lastAct = t;
    state.rdReady = t + timing_.tRCD;
    state.wrReady = t + timing_.tRCD;
    state.preReady = t + timing_.tRAS;
    state.actReady = t + timing_.tRC();
    state.open = true;
    return t;
}

double
BusScheduler::issuePre(uint32_t bank, double earliest)
{
    QUAC_ASSERT(bank < banks_.size(), "bank=%u", bank);
    BankState &state = banks_[bank];
    double t = claimCmdSlot(std::max(earliest, state.preReady));
    recordCommand(dram::CommandType::PRE);
    state.actReady = std::max(state.actReady, t + timing_.tRP);
    state.open = false;
    return t;
}

BusScheduler::IssueInfo
BusScheduler::issueRead(uint32_t bank, double earliest)
{
    QUAC_ASSERT(bank < banks_.size(), "bank=%u", bank);
    BankState &state = banks_[bank];
    uint32_t group = bank % bankGroups_;

    double t = std::max(earliest, state.rdReady);
    double ccd = (group == lastRdGroup_) ? timing_.tCCD_L
                                         : timing_.tCCD_S;
    t = std::max(t, lastRd_ + ccd);
    // Write-to-read turnaround.
    double wtr = (group == lastWrGroup_) ? timing_.tWTR_L
                                         : timing_.tWTR_S;
    t = std::max(t, lastWrDataEnd_ + wtr);
    // Data bus must be free when this burst's data arrives.
    t = std::max(t, dataBusFree_ - timing_.tCL);
    t = claimCmdSlot(t);

    lastRd_ = t;
    lastRdGroup_ = group;
    recordCommand(dram::CommandType::RD);
    double data_start = std::max(t + timing_.tCL, dataBusFree_);
    double data_end = data_start + timing_.tBurst;
    dataBusFree_ = data_end;
    dataBusBusy_ += timing_.tBurst;
    state.preReady = std::max(state.preReady, t + timing_.tRTP);
    return {t, data_end};
}

BusScheduler::IssueInfo
BusScheduler::issueWrite(uint32_t bank, double earliest)
{
    QUAC_ASSERT(bank < banks_.size(), "bank=%u", bank);
    BankState &state = banks_[bank];
    uint32_t group = bank % bankGroups_;

    double t = std::max(earliest, state.wrReady);
    double ccd = (group == lastWrGroup_) ? timing_.tCCD_L
                                         : timing_.tCCD_S;
    t = std::max(t, lastWr_ + ccd);
    t = std::max(t, dataBusFree_ - timing_.tCWL);
    t = claimCmdSlot(t);

    lastWr_ = t;
    lastWrGroup_ = group;
    recordCommand(dram::CommandType::WR);
    double data_start = std::max(t + timing_.tCWL, dataBusFree_);
    double data_end = data_start + timing_.tBurst;
    dataBusFree_ = data_end;
    dataBusBusy_ += timing_.tBurst;
    lastWrDataEnd_ = data_end;
    state.preReady = std::max(state.preReady, data_end + timing_.tWR);
    return {t, data_end};
}

double
BusScheduler::issueViolated(
    uint32_t bank,
    const std::vector<std::pair<dram::CommandType, double>> &seq,
    double earliest)
{
    QUAC_ASSERT(bank < banks_.size(), "bank=%u", bank);
    QUAC_ASSERT(!seq.empty(), "empty violated sequence");
    BankState &state = banks_[bank];

    // Offsets rounded up to whole clocks (the memory controller can
    // only place commands on clock edges).
    std::vector<double> offsets;
    offsets.reserve(seq.size());
    for (const auto &[type, offset] : seq) {
        offsets.push_back(clockIndex(offset) * timing_.tCK);
        (void)type;
    }

    double base = std::max(earliest, state.actReady);
    for (;;) {
        base = clockIndex(base) * timing_.tCK;
        bool ok = true;
        for (size_t i = 0; i < seq.size() && ok; ++i) {
            double t = base + offsets[i];
            if (!slotFree(t))
                ok = false;
            if (seq[i].first == dram::CommandType::ACT &&
                actConstraint(bank, t) > t + 1e-9) {
                ok = false;
            }
        }
        if (ok)
            break;
        base += timing_.tCK;
    }

    double last_act = state.lastAct;
    double last = base;
    for (size_t i = 0; i < seq.size(); ++i) {
        double t = base + offsets[i];
        usedSlots_.insert(clockIndex(t));
        lastCmd_ = std::max(lastCmd_, t);
        recordCommand(seq[i].first);
        if (seq[i].first == dram::CommandType::ACT) {
            recordAct(bank, t);
            last_act = t;
        } else if (seq[i].first == dram::CommandType::RD) {
            // tRCD-violated read (D-RaNGe): the data burst still
            // occupies the data bus.
            lastRd_ = t;
            lastRdGroup_ = bank % bankGroups_;
            double data_start = std::max(t + timing_.tCL,
                                         dataBusFree_);
            dataBusFree_ = data_start + timing_.tBurst;
            dataBusBusy_ += timing_.tBurst;
        }
        last = t;
    }

    // Bank state after the sequence: the last ACT defines sensing and
    // restore timing.
    state.lastAct = last_act;
    state.rdReady = last_act + timing_.tRCD;
    state.wrReady = last_act + timing_.tRCD;
    state.preReady = last_act + timing_.tRAS;
    state.actReady = last_act + timing_.tRC();
    state.open = true;
    return last;
}

void
BusScheduler::holdBank(uint32_t bank, double until)
{
    QUAC_ASSERT(bank < banks_.size(), "bank=%u", bank);
    BankState &state = banks_[bank];
    state.actReady = std::max(state.actReady, until);
    state.rdReady = std::max(state.rdReady, until);
    state.wrReady = std::max(state.wrReady, until);
    state.preReady = std::max(state.preReady, until);
}

double
BusScheduler::bankActReady(uint32_t bank) const
{
    QUAC_ASSERT(bank < banks_.size(), "bank=%u", bank);
    return banks_[bank].actReady;
}

} // namespace quac::sched

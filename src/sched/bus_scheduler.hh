/**
 * @file
 * Resource-tracking DDR4 command scheduler for one memory channel.
 *
 * Models the constraints that determine TRNG throughput (paper
 * Section 7.2): per-bank array timings (tRCD/tRAS/tRP/tRC), bus-level
 * read/write pacing (tCCD_S/L, tWTR), activation pacing (tRRD_S/L,
 * tFAW), the one-command-per-clock command bus, and data-bus burst
 * occupancy. Violated-timing sequences (QUAC, RowClone) are scheduled
 * with exact intra-sequence offsets, bypassing the per-bank rules
 * they intentionally break while still consuming command-bus slots
 * and obeying the global activation constraints.
 */

#ifndef QUAC_SCHED_BUS_SCHEDULER_HH
#define QUAC_SCHED_BUS_SCHEDULER_HH

#include <deque>
#include <set>
#include <vector>

#include "dram/command.hh"
#include "dram/timing.hh"

namespace quac::sched
{

/** One channel's command/data-bus scheduler. */
class BusScheduler
{
  public:
    /**
     * @param timing JEDEC timing set (fixes the clock).
     * @param banks number of banks on the channel.
     * @param bank_groups number of bank groups.
     */
    BusScheduler(const dram::TimingParams &timing, uint32_t banks = 16,
                 uint32_t bank_groups = 4);

    /** @name Command issue (each returns the actual issue time) */
    /**@{*/
    double issueAct(uint32_t bank, double earliest);
    double issuePre(uint32_t bank, double earliest);

    /**
     * Issue a BL8 read. The returned IssueInfo carries both the
     * command time and when the data burst completes on the bus.
     */
    struct IssueInfo
    {
        double cmdTime = 0.0;
        double dataEnd = 0.0;
    };
    IssueInfo issueRead(uint32_t bank, double earliest);
    IssueInfo issueWrite(uint32_t bank, double earliest);

    /**
     * Issue a violated-timing command sequence with fixed
     * intra-sequence offsets (rounded up to whole clocks), e.g.
     * QUAC's ACT-PRE-ACT at +0/+2.5/+5 ns. Per-bank interval rules
     * between the sequence's commands are bypassed; the first
     * command still requires the bank to be activatable, and every
     * ACT obeys tRRD/tFAW and command-bus slots.
     *
     * @return issue time of the last command in the sequence.
     */
    double issueViolated(
        uint32_t bank,
        const std::vector<std::pair<dram::CommandType, double>> &seq,
        double earliest);
    /**@}*/

    /** Block a bank until @p until (e.g. restore or settle waits). */
    void holdBank(uint32_t bank, double until);

    /** Earliest time the bank could accept an ACT. */
    double bankActReady(uint32_t bank) const;

    /** Latest data-bus activity end (run time of the schedule). */
    double dataBusEnd() const { return dataBusFree_; }

    /** Latest command issue time. */
    double lastCommandTime() const { return lastCmd_; }

    /** Accumulated data-burst time (for utilization accounting). */
    double dataBusBusyNs() const { return dataBusBusy_; }

    /** @name Issue accounting (refill charging hooks)
     *
     * Commands issued since construction, total and per type. The
     * entropy-service refill scheduler charges background refill work
     * in command-bus slots, so the TRNG programs report how many
     * slots one iteration actually consumes.
     */
    /**@{*/
    uint64_t commandsIssued() const { return commandCount_; }
    uint64_t actsIssued() const { return actCount_; }
    uint64_t prechargesIssued() const { return preCount_; }
    uint64_t readsIssued() const { return readCount_; }
    uint64_t writesIssued() const { return writeCount_; }
    /**@}*/

    const dram::TimingParams &timing() const { return timing_; }

  private:
    struct BankState
    {
        double actReady = 0.0;  ///< PRE + tRP or ACT + tRC.
        double rdReady = 0.0;   ///< ACT + tRCD.
        double wrReady = 0.0;
        double preReady = 0.0;  ///< ACT + tRAS and read/write recovery.
        double lastAct = -1.0e18;
        bool open = false;
    };

    /** Claim the first free command-bus clock at or after t. */
    double claimCmdSlot(double earliest);

    /** True if the command-bus clock at t is free. */
    bool slotFree(double t) const;

    /** Earliest ACT time satisfying tRRD and tFAW at or after t. */
    double actConstraint(uint32_t bank, double t) const;

    /** Count one issued command of @p type. */
    void recordCommand(dram::CommandType type);

    /** Record an ACT for tRRD/tFAW accounting. */
    void recordAct(uint32_t bank, double t);

    int64_t clockIndex(double t) const;

    dram::TimingParams timing_;
    uint32_t bankGroups_;
    std::vector<BankState> banks_;
    std::set<int64_t> usedSlots_;
    std::deque<double> actWindow_;   ///< Last ACT times (tFAW).
    double lastActAny_ = -1.0e18;
    std::vector<double> lastActPerGroup_;
    double lastRd_ = -1.0e18;
    uint32_t lastRdGroup_ = 0;
    double lastWr_ = -1.0e18;
    uint32_t lastWrGroup_ = 0;
    double lastWrDataEnd_ = -1.0e18;
    double dataBusFree_ = 0.0;
    double dataBusBusy_ = 0.0;
    double lastCmd_ = 0.0;
    uint64_t commandCount_ = 0;
    uint64_t actCount_ = 0;
    uint64_t preCount_ = 0;
    uint64_t readCount_ = 0;
    uint64_t writeCount_ = 0;
};

} // namespace quac::sched

#endif // QUAC_SCHED_BUS_SCHEDULER_HH

#include "sched/trng_programs.hh"

#include <algorithm>

#include "common/error.hh"
#include "sched/bus_scheduler.hh"

namespace quac::sched
{

namespace
{

using dram::CommandType;

/** Violated sequence for one RowClone copy. */
std::vector<std::pair<CommandType, double>>
rowCloneSeq(const dram::Calibration &cal)
{
    return {{CommandType::ACT, 0.0},
            {CommandType::PRE, cal.rowCloneSrcOpenNs},
            {CommandType::ACT, cal.rowCloneSrcOpenNs +
                                   cal.rowCloneGapNs}};
}

/** Violated sequence for the QUAC ACT-PRE-ACT core. */
std::vector<std::pair<CommandType, double>>
quacSeq(const dram::Calibration &cal)
{
    return {{CommandType::ACT, 0.0},
            {CommandType::PRE, cal.quacGapNs},
            {CommandType::ACT, 2.0 * cal.quacGapNs}};
}

/** The QUAC command program against an already-built channel. */
ScheduleStats
simulateQuacOn(BusScheduler &bus, const QuacScheduleConfig &cfg)
{
    QUAC_ASSERT(cfg.banks >= 1 && cfg.banks <= 4,
                "banks=%u (one per bank group)", cfg.banks);
    QUAC_ASSERT(cfg.iterations > cfg.warmupIterations,
                "iterations=%u warmup=%u", cfg.iterations,
                cfg.warmupIterations);

    const dram::Calibration &cal = cfg.calibration;
    const IterationProfile &profile = cfg.profile;

    uint32_t reads_per_sib =
        profile.sib > 0
            ? (profile.columnsRead + profile.sib - 1) / profile.sib
            : profile.columnsRead;

    double checkpoint = 0.0;
    double latency = 0.0;
    bool latency_done = false;
    uint64_t warmup_commands = 0;

    for (uint32_t iter = 0; iter < cfg.iterations; ++iter) {
        // --- Segment initialization (4 rows per bank) -------------
        if (cfg.init == InitMethod::RowClone) {
            for (uint32_t copy = 0; copy < 4; ++copy) {
                for (uint32_t b = 0; b < cfg.banks; ++b)
                    bus.issueViolated(b, rowCloneSeq(cal), 0.0);
                // Restore the overwritten destination, then close.
                for (uint32_t b = 0; b < cfg.banks; ++b)
                    bus.issuePre(b, 0.0);
            }
        } else {
            for (uint32_t row = 0; row < 4; ++row) {
                for (uint32_t b = 0; b < cfg.banks; ++b)
                    bus.issueAct(b, 0.0);
                for (uint32_t col = 0; col < profile.columnsPerRow;
                     ++col) {
                    for (uint32_t b = 0; b < cfg.banks; ++b)
                        bus.issueWrite(b, 0.0);
                }
                for (uint32_t b = 0; b < cfg.banks; ++b)
                    bus.issuePre(b, 0.0);
            }
        }

        // --- QUAC ---------------------------------------------------
        if (cfg.nativeQuacCommand) {
            // Future-interface mode (Section 4.3): one command slot
            // per bank; sensing still starts at the command.
            for (uint32_t b = 0; b < cfg.banks; ++b) {
                bus.issueViolated(b, {{CommandType::ACT, 0.0}}, 0.0);
            }
        } else {
            for (uint32_t b = 0; b < cfg.banks; ++b)
                bus.issueViolated(b, quacSeq(cal), 0.0);
        }

        // --- Read the SHA input block ranges ------------------------
        uint32_t bank0_reads = 0;
        for (uint32_t col = 0; col < profile.columnsRead; ++col) {
            for (uint32_t b = 0; b < cfg.banks; ++b) {
                BusScheduler::IssueInfo info = bus.issueRead(b, 0.0);
                if (!latency_done && b == 0 &&
                    ++bank0_reads == reads_per_sib) {
                    latency = info.dataEnd + cfg.sha.latencyNs();
                    latency_done = true;
                }
            }
        }
        for (uint32_t b = 0; b < cfg.banks; ++b)
            bus.issuePre(b, 0.0);

        if (iter + 1 == cfg.warmupIterations) {
            checkpoint = std::max(bus.lastCommandTime(),
                                  bus.dataBusEnd());
            warmup_commands = bus.commandsIssued();
        }
    }

    double end = std::max(bus.lastCommandTime(), bus.dataBusEnd());
    ScheduleStats stats;
    stats.totalNs = end - checkpoint;
    stats.bits = 256.0 * profile.sib * cfg.banks *
                 (cfg.iterations - cfg.warmupIterations);
    stats.latency256Ns = latency;
    stats.busUtilization = end > 0.0 ? bus.dataBusBusyNs() / end : 0.0;
    stats.commands = bus.commandsIssued() - warmup_commands;
    return stats;
}

} // anonymous namespace

ScheduleStats
simulateQuacTrng(const dram::TimingParams &timing,
                 const QuacScheduleConfig &cfg)
{
    BusScheduler bus(timing, 16, 4);
    return simulateQuacOn(bus, cfg);
}

ScheduleStats
simulateQuacTrng(const ChannelTopology &topology, uint32_t channel,
                 const QuacScheduleConfig &cfg)
{
    BusScheduler bus = topology.makeScheduler(channel);
    return simulateQuacOn(bus, cfg);
}

namespace
{

RefillCost
refillCostFrom(const ScheduleStats &stats,
               const QuacScheduleConfig &cfg)
{
    double iterations =
        static_cast<double>(cfg.iterations - cfg.warmupIterations);
    RefillCost cost;
    cost.iterationNs = stats.totalNs / iterations;
    cost.bitsPerIteration = stats.bits / iterations;
    cost.commandsPerIteration =
        static_cast<double>(stats.commands) / iterations;
    return cost;
}

} // anonymous namespace

RefillCost
quacRefillCost(const dram::TimingParams &timing,
               const QuacScheduleConfig &cfg)
{
    return refillCostFrom(simulateQuacTrng(timing, cfg), cfg);
}

RefillCost
quacRefillCost(const ChannelTopology &topology, uint32_t channel,
               const QuacScheduleConfig &cfg)
{
    return refillCostFrom(simulateQuacTrng(topology, channel, cfg),
                          cfg);
}

ScheduleStats
simulateDRange(const dram::TimingParams &timing,
               const DRangeScheduleConfig &cfg)
{
    QUAC_ASSERT(cfg.banks >= 1 && cfg.banks <= 4, "banks=%u",
                cfg.banks);
    QUAC_ASSERT(cfg.numbers > cfg.warmupNumbers, "numbers=%u",
                cfg.numbers);

    BusScheduler bus(timing, 16, 4);
    const dram::Calibration &cal = cfg.calibration;

    std::vector<std::pair<CommandType, double>> access_seq = {
        {CommandType::ACT, 0.0},
        {CommandType::RD, cal.drangeReadNs}};

    double checkpoint = 0.0;
    double latency = 0.0;
    uint64_t total_accesses =
        static_cast<uint64_t>(cfg.numbers) * cfg.accessesPerNumber;
    uint64_t warmup_accesses =
        static_cast<uint64_t>(cfg.warmupNumbers) *
        cfg.accessesPerNumber;
    uint64_t first_number_accesses = cfg.accessesPerNumber;

    // Accesses proceed in waves across the bank groups. Each harvest
    // corrupts the probed cache block, so the known data pattern is
    // rewritten first (obeyed ACT + WR + PRE), then the violated
    // ACT+RD fires.
    uint64_t done = 0;
    while (done < total_accesses) {
        uint32_t in_wave = static_cast<uint32_t>(
            std::min<uint64_t>(cfg.banks, total_accesses - done));
        for (uint32_t b = 0; b < in_wave; ++b)
            bus.issueAct(b, 0.0);
        for (uint32_t b = 0; b < in_wave; ++b)
            bus.issueWrite(b, 0.0);
        for (uint32_t b = 0; b < in_wave; ++b)
            bus.issuePre(b, 0.0);
        double last_cmd = 0.0;
        for (uint32_t b = 0; b < in_wave; ++b)
            last_cmd = bus.issueViolated(b, access_seq, 0.0);
        for (uint32_t b = 0; b < in_wave; ++b)
            bus.issuePre(b, 0.0);

        uint64_t prev_done = done;
        done += in_wave;
        if (prev_done < first_number_accesses &&
            done >= first_number_accesses) {
            latency = last_cmd + timing.tCL + timing.tBurst;
            if (cfg.useSha)
                latency += cfg.sha.latencyNs();
        }
        if (prev_done < warmup_accesses && done >= warmup_accesses) {
            checkpoint = std::max(bus.lastCommandTime(),
                                  bus.dataBusEnd());
            warmup_accesses = done;
        }
    }

    double end = std::max(bus.lastCommandTime(), bus.dataBusEnd());
    ScheduleStats stats;
    stats.totalNs = end - checkpoint;
    stats.bits = cfg.bitsPerAccess *
                 static_cast<double>(total_accesses - warmup_accesses);
    stats.latency256Ns = latency;
    stats.busUtilization = end > 0.0 ? bus.dataBusBusyNs() / end : 0.0;
    return stats;
}

ScheduleStats
simulateTalukder(const dram::TimingParams &timing,
                 const TalukderScheduleConfig &cfg)
{
    QUAC_ASSERT(cfg.banks >= 1 && cfg.banks <= 4, "banks=%u",
                cfg.banks);
    QUAC_ASSERT(cfg.rows > cfg.warmupRows, "rows=%u", cfg.rows);

    BusScheduler bus(timing, 16, 4);
    const dram::Calibration &cal = cfg.calibration;

    // Donor activation with obeyed tRAS, then a tRP-violated
    // re-activation of the victim row.
    std::vector<std::pair<CommandType, double>> failure_seq = {
        {CommandType::ACT, 0.0},
        {CommandType::PRE, timing.tRAS},
        {CommandType::ACT, timing.tRAS + cal.talukderPreNs}};

    double checkpoint = 0.0;
    double latency = 0.0;
    bool latency_done = false;
    uint32_t columns_per_256 = static_cast<uint32_t>(
        cfg.columnsRead / std::max(1.0, cfg.bitsPerRow / 256.0));

    // Rows are harvested in waves of cfg.banks so the row reads from
    // different bank groups interleave on the data bus (the paper's
    // bank-group-parallelism augmentation).
    uint32_t waves = (cfg.rows + cfg.banks - 1) / cfg.banks;
    uint32_t rows_done = 0;
    uint32_t warmup_rows_done = 0;

    for (uint32_t wave = 0; wave < waves; ++wave) {
        uint32_t in_wave =
            std::min(cfg.banks, cfg.rows - wave * cfg.banks);

        for (uint32_t b = 0; b < in_wave; ++b) {
            if (cfg.rowCloneInit) {
                bus.issueViolated(b, rowCloneSeq(cal), 0.0);
                bus.issuePre(b, 0.0);
            } else {
                bus.issueAct(b, 0.0);
                for (uint32_t col = 0; col < cfg.columnsPerRow; ++col)
                    bus.issueWrite(b, 0.0);
                bus.issuePre(b, 0.0);
            }
            bus.issueViolated(b, failure_seq, 0.0);
        }

        for (uint32_t col = 0; col < cfg.columnsRead; ++col) {
            for (uint32_t b = 0; b < in_wave; ++b) {
                BusScheduler::IssueInfo info = bus.issueRead(b, 0.0);
                if (!latency_done && b == 0 &&
                    col + 1 == columns_per_256) {
                    latency = info.dataEnd;
                    if (cfg.useSha)
                        latency += cfg.sha.latencyNs();
                    latency_done = true;
                }
            }
        }
        for (uint32_t b = 0; b < in_wave; ++b)
            bus.issuePre(b, 0.0);

        rows_done += in_wave;
        if (warmup_rows_done < cfg.warmupRows &&
            rows_done >= cfg.warmupRows) {
            checkpoint = std::max(bus.lastCommandTime(),
                                  bus.dataBusEnd());
            warmup_rows_done = rows_done;
        }
    }

    double end = std::max(bus.lastCommandTime(), bus.dataBusEnd());
    ScheduleStats stats;
    stats.totalNs = end - checkpoint;
    stats.bits = cfg.bitsPerRow * (cfg.rows - warmup_rows_done);
    stats.latency256Ns = latency;
    stats.busUtilization = end > 0.0 ? bus.dataBusBusyNs() / end : 0.0;
    return stats;
}

} // namespace quac::sched

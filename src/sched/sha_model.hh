/**
 * @file
 * Cost model of the memory-controller SHA-256 core (paper Section 9,
 * values from Baldanzi et al. [17]: 65 cycles at 5.15 GHz, 19.7 Gb/s,
 * 0.001 mm^2 at 7 nm).
 */

#ifndef QUAC_SCHED_SHA_MODEL_HH
#define QUAC_SCHED_SHA_MODEL_HH

namespace quac::sched
{

/** Hardware SHA-256 core characteristics used for cost accounting. */
struct ShaCoreModel
{
    double clockGhz = 5.15;
    double latencyCycles = 65.0;
    double throughputGbps = 19.7;
    double areaMm2 = 0.001;

    /** Pipeline latency of hashing one input block, in ns. */
    double latencyNs() const { return latencyCycles / clockGhz; }
};

/**
 * Memory-controller storage cost of QUAC-TRNG (paper Section 9):
 * 4 + 8 row addresses plus 11 column addresses x 10 temperature
 * ranges = 1316 bits, 0.0003 mm^2 by CACTI.
 */
struct IntegrationCostModel
{
    unsigned segmentRowAddresses = 4;
    unsigned initRowAddresses = 8;
    unsigned columnAddressesPerTemperature = 11;
    unsigned temperatureRanges = 10;
    double storageAreaMm2 = 0.0003;
    double reservedBytes = 192.0 * 1024.0;
    double moduleBytes = 8.0 * 1024.0 * 1024.0 * 1024.0;

    unsigned
    storageBits() const
    {
        // Row addresses are 17 bits, column addresses are 7 bits on
        // an 8 Gb x8 device; the paper totals 1316 bits.
        return (segmentRowAddresses + initRowAddresses) * 17 +
               columnAddressesPerTemperature * temperatureRanges * 10 +
               6; // control/valid state
    }

    double
    reservedFraction() const
    {
        return reservedBytes / moduleBytes;
    }
};

} // namespace quac::sched

#endif // QUAC_SCHED_SHA_MODEL_HH

/**
 * @file
 * Static shape of the multi-channel memory system the TRNG stack is
 * scheduled on (paper Section 7.3 reports a 4-channel DDR4 system).
 *
 * A ChannelTopology names how many channels exist, how many banks and
 * bank groups each has, and which JEDEC timing set each channel runs
 * at (channels may be heterogeneous, e.g. mixed-speed DIMMs). Every
 * channel gets its own BusScheduler instance; the per-channel TRNG
 * simulations in trng_programs.hh accept a (topology, channel)
 * address instead of assuming one implicit channel.
 */

#ifndef QUAC_SCHED_CHANNEL_TOPOLOGY_HH
#define QUAC_SCHED_CHANNEL_TOPOLOGY_HH

#include <cstdint>
#include <vector>

#include "dram/timing.hh"
#include "sched/bus_scheduler.hh"

namespace quac::sched
{

/** Channels x banks shape plus per-channel timing. */
struct ChannelTopology
{
    /** Number of independent memory channels. */
    uint32_t channels = 4;
    /** Banks per channel. */
    uint32_t banksPerChannel = 16;
    /** Bank groups per channel. */
    uint32_t bankGroups = 4;
    /** Timing set used by every channel without an override. */
    dram::TimingParams timing = dram::TimingParams::ddr4(2400);
    /**
     * Optional per-channel timing overrides: channel c uses
     * perChannelTiming[c] when c < perChannelTiming.size(), else
     * the shared @ref timing. Lets studies model heterogeneous
     * channels (one slow DIMM starving its shards, say).
     */
    std::vector<dram::TimingParams> perChannelTiming;

    /** A single-channel topology at @p t (legacy call sites). */
    static ChannelTopology single(
        const dram::TimingParams &t = dram::TimingParams::ddr4(2400));

    /** Timing of @p channel (fatal if out of range). */
    const dram::TimingParams &channelTiming(uint32_t channel) const;

    /** A fresh BusScheduler for @p channel (fatal if out of range). */
    BusScheduler makeScheduler(uint32_t channel) const;

    /** True when any channel overrides the shared timing. */
    bool heterogeneous() const { return !perChannelTiming.empty(); }
};

} // namespace quac::sched

#endif // QUAC_SCHED_CHANNEL_TOPOLOGY_HH

/**
 * @file
 * Command-schedule throughput models for QUAC-TRNG and the two
 * high-throughput baselines (paper Sections 7.2 and 7.4). Each
 * simulator drives the BusScheduler with the exact command sequence
 * the TRNG needs and reports steady-state throughput plus the
 * 256-bit-number latency.
 */

#ifndef QUAC_SCHED_TRNG_PROGRAMS_HH
#define QUAC_SCHED_TRNG_PROGRAMS_HH

#include <cstdint>

#include "dram/calibration.hh"
#include "dram/timing.hh"
#include "sched/channel_topology.hh"
#include "sched/sha_model.hh"

namespace quac::sched
{

/** How the QUAC segment is re-initialized every iteration. */
enum class InitMethod
{
    WriteBursts, ///< Memory-controller WR bursts (One Bank / BGP).
    RowClone,    ///< In-DRAM copies from reserved rows (RC + BGP).
};

/** Per-bank per-iteration workload parameters from characterization. */
struct IterationProfile
{
    /** SHA input blocks harvested per iteration (floor(H/256)). */
    uint32_t sib = 7;
    /** Cache blocks read per iteration (SIB range coverage). */
    uint32_t columnsRead = 128;
    /** Cache blocks per row (write-based init cost). */
    uint32_t columnsPerRow = 128;
};

/** QUAC-TRNG schedule configuration (Fig 11 configurations). */
struct QuacScheduleConfig
{
    InitMethod init = InitMethod::RowClone;
    /** Banks used concurrently (1 = One Bank; 4 = bank-group par.). */
    uint32_t banks = 4;
    IterationProfile profile;
    uint32_t iterations = 50;
    uint32_t warmupIterations = 5;
    /**
     * Paper Section 4.3 future interface: a DRAM chip specified to
     * perform QUAC natively replaces the three-command violated
     * ACT-PRE-ACT sequence with a single QUAC command.
     */
    bool nativeQuacCommand = false;
    dram::Calibration calibration;
    ShaCoreModel sha;
};

/** Measured schedule outcome. */
struct ScheduleStats
{
    double totalNs = 0.0;       ///< Steady-state makespan.
    double bits = 0.0;          ///< Random bits produced.
    double latency256Ns = 0.0;  ///< Cold-start first 256-bit number.
    double busUtilization = 0.0;
    /** Command-bus slots consumed in the steady-state window. */
    uint64_t commands = 0;

    /** Per-channel throughput in Gb/s. */
    double
    throughputGbps() const
    {
        return totalNs > 0.0 ? bits / totalNs : 0.0;
    }
};

/** Simulate QUAC-TRNG on one 16-bank/4-group channel. */
ScheduleStats simulateQuacTrng(const dram::TimingParams &timing,
                               const QuacScheduleConfig &cfg);

/**
 * Channel-addressable form: simulate QUAC-TRNG on channel @p channel
 * of @p topology, using that channel's timing and bank shape.
 * Channels are independent at command granularity, so per-channel
 * results differ only through the topology's per-channel timing.
 */
ScheduleStats simulateQuacTrng(const ChannelTopology &topology,
                               uint32_t channel,
                               const QuacScheduleConfig &cfg);

/**
 * Steady-state cost of one QUAC-TRNG refill iteration, as the
 * entropy-service refill scheduler charges it against channel time:
 * wall-clock ns, random bits produced, and command-bus slots
 * consumed. Derived from the full BusScheduler simulation
 * (simulateQuacTrng) with warmup excluded.
 */
struct RefillCost
{
    double iterationNs = 0.0;
    double bitsPerIteration = 0.0;
    double commandsPerIteration = 0.0;

    double
    nsPerByte() const
    {
        return bitsPerIteration > 0.0
                   ? iterationNs / (bitsPerIteration / 8.0)
                   : 0.0;
    }
};

RefillCost quacRefillCost(const dram::TimingParams &timing,
                          const QuacScheduleConfig &cfg);

/** Channel-addressable refill cost on @p channel of @p topology. */
RefillCost quacRefillCost(const ChannelTopology &topology,
                          uint32_t channel,
                          const QuacScheduleConfig &cfg);

/** D-RaNGe schedule configuration (Section 7.4.1). */
struct DRangeScheduleConfig
{
    uint32_t banks = 4;
    /** Random bits harvested per reduced-tRCD access. */
    double bitsPerAccess = 4.0;
    /** Accesses needed per 256-bit number. */
    uint32_t accessesPerNumber = 64;
    /** Enhanced configuration post-processes with SHA-256. */
    bool useSha = false;
    uint32_t numbers = 400;
    uint32_t warmupNumbers = 20;
    dram::Calibration calibration;
    ShaCoreModel sha;
};

/** Simulate D-RaNGe on one channel. */
ScheduleStats simulateDRange(const dram::TimingParams &timing,
                             const DRangeScheduleConfig &cfg);

/** Talukder+ schedule configuration (Section 7.4.2). */
struct TalukderScheduleConfig
{
    uint32_t banks = 4;
    /** Random bits produced per harvested row. */
    double bitsPerRow = 768.0;
    /** Cache blocks read per harvested row. */
    uint32_t columnsRead = 128;
    /** Cache blocks per row (write-based init cost). */
    uint32_t columnsPerRow = 128;
    /** Enhanced configuration initializes rows with RowClone. */
    bool rowCloneInit = true;
    bool useSha = true;
    uint32_t rows = 60;
    uint32_t warmupRows = 6;
    dram::Calibration calibration;
    ShaCoreModel sha;
};

/** Simulate Talukder+ on one channel. */
ScheduleStats simulateTalukder(const dram::TimingParams &timing,
                               const TalukderScheduleConfig &cfg);

} // namespace quac::sched

#endif // QUAC_SCHED_TRNG_PROGRAMS_HH

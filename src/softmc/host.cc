#include "softmc/host.hh"

#include "common/error.hh"

namespace quac::softmc
{

SoftMcHost::SoftMcHost(dram::DramModule &module)
    : module_(module), timing_(module.timing())
{
}

void
SoftMcHost::wait(double ns)
{
    if (ns < 0.0)
        fatal("negative wait of %f ns", ns);
    now_ += ns;
}

void
SoftMcHost::act(uint32_t bank, uint32_t row)
{
    module_.act(bank, row, now_);
}

void
SoftMcHost::pre(uint32_t bank)
{
    module_.pre(bank, now_);
}

std::vector<uint64_t>
SoftMcHost::rd(uint32_t bank, uint32_t column)
{
    return module_.readBlock(bank, column, now_);
}

void
SoftMcHost::rdInto(uint32_t bank, uint32_t column, uint64_t *dst)
{
    module_.readBlockInto(bank, column, dst, now_);
}

void
SoftMcHost::readColumns(uint32_t bank, uint32_t begin, uint32_t end,
                        uint64_t *dst)
{
    if (begin > end)
        fatal("readColumns range [%u, %u) is inverted", begin, end);
    size_t words = module_.geometry().cacheBlockBits / 64;
    for (uint32_t col = begin; col < end; ++col) {
        module_.readBlockInto(bank, col, dst, now_);
        dst += words;
        wait(timing_.tCCD_L);
    }
}

void
SoftMcHost::wr(uint32_t bank, uint32_t column,
               const std::vector<uint64_t> &data)
{
    module_.writeBlock(bank, column, data, now_);
}

void
SoftMcHost::actObeyed(uint32_t bank, uint32_t row)
{
    act(bank, row);
    wait(timing_.tRCD);
}

void
SoftMcHost::preObeyed(uint32_t bank)
{
    pre(bank);
    wait(timing_.tRP);
}

std::vector<uint64_t>
SoftMcHost::readOpenRow(uint32_t bank)
{
    std::vector<uint64_t> row_bits(module_.geometry().wordsPerRow());
    readOpenRowInto(bank, row_bits.data());
    return row_bits;
}

void
SoftMcHost::readOpenRowInto(uint32_t bank, uint64_t *dst)
{
    readColumns(bank, 0, module_.geometry().cacheBlocksPerRow(), dst);
}

void
SoftMcHost::writeRowFill(uint32_t bank, uint32_t row, bool value)
{
    const dram::Geometry &geom = module_.geometry();
    std::vector<uint64_t> block(geom.cacheBlockBits / 64,
                                value ? ~uint64_t{0} : uint64_t{0});
    actObeyed(bank, row);
    for (uint32_t col = 0; col < geom.cacheBlocksPerRow(); ++col) {
        wr(bank, col, block);
        wait(timing_.tCCD_L);
    }
    wait(timing_.tWR);
    preObeyed(bank);
}

void
SoftMcHost::quac(uint32_t bank, uint32_t segment, unsigned first_offset,
                 double gap_ns)
{
    const dram::Geometry &geom = module_.geometry();
    const dram::Calibration &cal = module_.calibration();
    if (segment >= geom.segmentsPerBank())
        fatal("segment %u out of range", segment);
    if (first_offset >= dram::Geometry::rowsPerSegment)
        fatal("first_offset %u out of range", first_offset);
    double gap = gap_ns > 0.0 ? gap_ns : cal.quacGapNs;

    uint32_t base = geom.firstRowOfSegment(segment);
    uint32_t first_row = base + first_offset;
    // The second ACT must target the row whose 2 LSBs are inverted
    // (paper Section 4: rows {0,3} or {1,2}).
    uint32_t second_row = base + (3u - first_offset);

    act(bank, first_row);
    wait(gap);          // violate tRAS
    pre(bank);
    wait(gap);          // violate tRP
    act(bank, second_row);
    wait(timing_.tRCD); // let sensing complete before reads
}

void
SoftMcHost::rowCloneCopy(uint32_t bank, uint32_t src_row,
                         uint32_t dst_row)
{
    const dram::Geometry &geom = module_.geometry();
    const dram::Calibration &cal = module_.calibration();
    if (geom.segmentOfRow(src_row) == geom.segmentOfRow(dst_row)) {
        fatal("RowClone src row %u and dst row %u share a segment; "
              "the sequence would trigger QUAC instead of a copy",
              src_row, dst_row);
    }

    act(bank, src_row);
    wait(cal.rowCloneSrcOpenNs); // long enough for the SAs to latch
    pre(bank);
    wait(cal.rowCloneGapNs);     // violate tRP: SAs still driving
    act(bank, dst_row);
    wait(timing_.tRAS);          // restore the overwritten destination
    preObeyed(bank);
}

std::vector<uint64_t>
SoftMcHost::readWithReducedTrcd(uint32_t bank, uint32_t row,
                                uint32_t column)
{
    const dram::Calibration &cal = module_.calibration();
    act(bank, row);
    wait(cal.drangeReadNs); // violate tRCD
    std::vector<uint64_t> block = rd(bank, column);
    wait(timing_.tRAS - cal.drangeReadNs);
    preObeyed(bank);
    return block;
}

std::vector<uint64_t>
SoftMcHost::activateWithReducedTrp(uint32_t bank, uint32_t donor_row,
                                   uint32_t victim_row)
{
    const dram::Calibration &cal = module_.calibration();
    actObeyed(bank, donor_row);
    wait(timing_.tRAS - timing_.tRCD);
    pre(bank);
    wait(cal.talukderPreNs); // violate tRP
    act(bank, victim_row);
    wait(timing_.tRCD);
    std::vector<uint64_t> row_bits = readOpenRow(bank);
    preObeyed(bank);
    return row_bits;
}

} // namespace quac::softmc

#include "softmc/program.hh"

#include <sstream>

#include "common/error.hh"

namespace quac::softmc
{

Program &
Program::act(uint32_t bank, uint32_t row)
{
    Instruction inst;
    inst.op = Instruction::Op::Act;
    inst.bank = bank;
    inst.row = row;
    instructions_.push_back(std::move(inst));
    return *this;
}

Program &
Program::pre(uint32_t bank)
{
    Instruction inst;
    inst.op = Instruction::Op::Pre;
    inst.bank = bank;
    instructions_.push_back(std::move(inst));
    return *this;
}

Program &
Program::rd(uint32_t bank, uint32_t column)
{
    Instruction inst;
    inst.op = Instruction::Op::Rd;
    inst.bank = bank;
    inst.column = column;
    instructions_.push_back(std::move(inst));
    return *this;
}

Program &
Program::wr(uint32_t bank, uint32_t column, std::vector<uint64_t> data)
{
    Instruction inst;
    inst.op = Instruction::Op::Wr;
    inst.bank = bank;
    inst.column = column;
    inst.data = std::move(data);
    instructions_.push_back(std::move(inst));
    return *this;
}

Program &
Program::wait(double ns)
{
    if (ns < 0.0)
        fatal("negative wait of %f ns", ns);
    Instruction inst;
    inst.op = Instruction::Op::Wait;
    inst.ns = ns;
    instructions_.push_back(std::move(inst));
    return *this;
}

double
Program::totalWaitNs() const
{
    double total = 0.0;
    for (const Instruction &inst : instructions_) {
        if (inst.op == Instruction::Op::Wait)
            total += inst.ns;
    }
    return total;
}

std::string
Program::str() const
{
    std::ostringstream out;
    for (const Instruction &inst : instructions_) {
        switch (inst.op) {
          case Instruction::Op::Act:
            out << "ACT  bank=" << inst.bank << " row=" << inst.row;
            break;
          case Instruction::Op::Pre:
            out << "PRE  bank=" << inst.bank;
            break;
          case Instruction::Op::Rd:
            out << "RD   bank=" << inst.bank << " col=" << inst.column;
            break;
          case Instruction::Op::Wr:
            out << "WR   bank=" << inst.bank << " col=" << inst.column;
            break;
          case Instruction::Op::Wait:
            out << "WAIT " << inst.ns << " ns";
            break;
        }
        out << "\n";
    }
    return out.str();
}

ExecutionResult
run(const Program &program, dram::DramModule &module, double start_ns)
{
    ExecutionResult result;
    double now = start_ns;
    for (const Instruction &inst : program.instructions()) {
        switch (inst.op) {
          case Instruction::Op::Act:
            module.act(inst.bank, inst.row, now);
            break;
          case Instruction::Op::Pre:
            module.pre(inst.bank, now);
            break;
          case Instruction::Op::Rd:
            result.reads.push_back(
                module.readBlock(inst.bank, inst.column, now));
            break;
          case Instruction::Op::Wr:
            module.writeBlock(inst.bank, inst.column, inst.data, now);
            break;
          case Instruction::Op::Wait:
            now += inst.ns;
            break;
        }
    }
    result.endTime = now;
    return result;
}

} // namespace quac::softmc

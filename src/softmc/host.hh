/**
 * @file
 * SoftMC-style host controller: an imperative cursor-time API over a
 * simulated module, plus the canned violated-timing routines the
 * paper builds on (Algorithm 1 QUAC, RowClone copy, tRCD/tRP failure
 * drivers).
 */

#ifndef QUAC_SOFTMC_HOST_HH
#define QUAC_SOFTMC_HOST_HH

#include <cstdint>
#include <vector>

#include "dram/module.hh"
#include "dram/timing.hh"

namespace quac::softmc
{

/** Imperative host front-end with a running time cursor. */
class SoftMcHost
{
  public:
    /** Attach to a module; the cursor starts at 0 ns. */
    explicit SoftMcHost(dram::DramModule &module);

    /** Current cursor time in ns. */
    double now() const { return now_; }

    /** Advance the cursor. */
    void wait(double ns);

    /** @name Raw commands issued at the current cursor time */
    /**@{*/
    void act(uint32_t bank, uint32_t row);
    void pre(uint32_t bank);
    std::vector<uint64_t> rd(uint32_t bank, uint32_t column);

    /**
     * Zero-copy RD: write the cache block's words into @p dst
     * (cacheBlockBits / 64 words) instead of allocating a vector.
     */
    void rdInto(uint32_t bank, uint32_t column, uint64_t *dst);

    /**
     * Batched zero-copy read of columns [begin, end) of the open
     * row, pacing tCCD_L between bursts internally. @p dst must hold
     * (end - begin) x cacheBlockBits / 64 words.
     */
    void readColumns(uint32_t bank, uint32_t begin, uint32_t end,
                     uint64_t *dst);

    void wr(uint32_t bank, uint32_t column,
            const std::vector<uint64_t> &data);
    /**@}*/

    /** @name Obeyed-timing composites */
    /**@{*/
    /** ACT then wait tRCD. */
    void actObeyed(uint32_t bank, uint32_t row);

    /** PRE then wait tRP. */
    void preObeyed(uint32_t bank);

    /** Read every cache block of the open row (tCCD_L pacing). */
    std::vector<uint64_t> readOpenRow(uint32_t bank);

    /**
     * Zero-copy readOpenRow(): fill @p dst (wordsPerRow() words)
     * with the open row's contents.
     */
    void readOpenRowInto(uint32_t bank, uint64_t *dst);

    /**
     * Open @p row, fill it with @p value via WR bursts, restore and
     * close it with obeyed timings.
     */
    void writeRowFill(uint32_t bank, uint32_t row, bool value);
    /**@}*/

    /** @name Violated-timing routines (the paper's substrates) */
    /**@{*/
    /**
     * Algorithm 1's QUAC core: ACT(first) - wait gap - PRE - wait gap
     * - ACT(first XOR 3) - wait tRCD. After this call the four rows
     * of @p segment are open and the sense amps hold QUAC results.
     *
     * @param bank bank index.
     * @param segment segment to activate.
     * @param first_offset row offset (0..3) of the first ACT.
     * @param gap_ns the violated tRAS / tRP gap (default 2.5 ns).
     */
    void quac(uint32_t bank, uint32_t segment, unsigned first_offset = 0,
              double gap_ns = -1.0);

    /**
     * RowClone-style in-DRAM copy of @p src_row into @p dst_row
     * (ACT src - PRE - ACT dst with a violated gap), then restore and
     * close. Source and destination must be in different segments of
     * the same bank.
     */
    void rowCloneCopy(uint32_t bank, uint32_t src_row, uint32_t dst_row);

    /**
     * D-RaNGe's substrate: activate @p row and read @p column after
     * only drange read latency (violating tRCD), then close the row.
     * @return the (partially random) cache block.
     */
    std::vector<uint64_t> readWithReducedTrcd(uint32_t bank,
                                              uint32_t row,
                                              uint32_t column);

    /**
     * Talukder+'s substrate: open @p donor_row fully (charging the
     * row buffer), precharge, then re-activate @p victim_row after
     * only talukderPreNs (violating tRP) and read it back fully.
     * @return the (partially flipped) victim row contents.
     */
    std::vector<uint64_t> activateWithReducedTrp(uint32_t bank,
                                                 uint32_t donor_row,
                                                 uint32_t victim_row);
    /**@}*/

    const dram::TimingParams &timing() const { return timing_; }
    dram::DramModule &module() { return module_; }

  private:
    dram::DramModule &module_;
    dram::TimingParams timing_;
    double now_ = 0.0;
};

} // namespace quac::softmc

#endif // QUAC_SOFTMC_HOST_HH

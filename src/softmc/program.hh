/**
 * @file
 * Declarative DDR4 command programs, mirroring SoftMC's programming
 * model (Hassan et al., HPCA'17): a program is a list of commands and
 * waits that the host executes with nanosecond timing precision.
 */

#ifndef QUAC_SOFTMC_PROGRAM_HH
#define QUAC_SOFTMC_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dram/module.hh"

namespace quac::softmc
{

/** One step of a SoftMC program. */
struct Instruction
{
    enum class Op : uint8_t
    {
        Act,   ///< Activate (bank, row).
        Pre,   ///< Precharge (bank).
        Rd,    ///< Read (bank, column); data is captured.
        Wr,    ///< Write (bank, column) with the attached data.
        Wait,  ///< Advance time by ns.
    };

    Op op = Op::Wait;
    uint32_t bank = 0;
    uint32_t row = 0;
    uint32_t column = 0;
    double ns = 0.0;                 ///< Wait duration.
    std::vector<uint64_t> data;      ///< WR payload (one cache block).
};

/** A buildable sequence of instructions. */
class Program
{
  public:
    Program &act(uint32_t bank, uint32_t row);
    Program &pre(uint32_t bank);
    Program &rd(uint32_t bank, uint32_t column);
    Program &wr(uint32_t bank, uint32_t column,
                std::vector<uint64_t> data);
    Program &wait(double ns);

    const std::vector<Instruction> &instructions() const
    {
        return instructions_;
    }

    size_t size() const { return instructions_.size(); }

    /** Total wall time of all waits (command slots take no time). */
    double totalWaitNs() const;

    /** Disassembly for debugging. */
    std::string str() const;

  private:
    std::vector<Instruction> instructions_;
};

/** Result of executing a program: all captured RD payloads. */
struct ExecutionResult
{
    /** One entry per Rd instruction, in program order. */
    std::vector<std::vector<uint64_t>> reads;
    /** Time at which the last instruction issued. */
    double endTime = 0.0;
};

/**
 * Execute a program against a module starting at @p start_ns,
 * issuing each command at the current cursor time.
 */
ExecutionResult run(const Program &program, dram::DramModule &module,
                    double start_ns = 0.0);

} // namespace quac::softmc

#endif // QUAC_SOFTMC_PROGRAM_HH

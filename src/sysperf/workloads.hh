/**
 * @file
 * SPEC CPU2006 workload memory-behaviour profiles for the system
 * performance study (paper Section 7.3, Fig 12).
 *
 * The original experiment replays licensed SPEC2006 memory traces in
 * Ramulator. We substitute synthetic traces parameterized by each
 * workload's published memory-bandwidth intensity class: what
 * matters for Fig 12 is each workload's *channel idle fraction* and
 * the burstiness of its accesses, which these profiles reproduce
 * (memory-bound mcf/lbm/libquantum leave little idle bandwidth;
 * compute-bound namd/sjeng leave the channel almost free).
 */

#ifndef QUAC_SYSPERF_WORKLOADS_HH
#define QUAC_SYSPERF_WORKLOADS_HH

#include <string>
#include <vector>

namespace quac::sysperf
{

/** One workload's memory-behaviour parameters. */
struct WorkloadProfile
{
    std::string name;
    /** Average fraction of channel time busy with demand traffic. */
    double busUtilization = 0.1;
    /** Mean busy-burst length in ns (row-locality proxy). */
    double burstNs = 80.0;
};

/** The 23 SPEC2006 workloads of Fig 12, in the figure's order. */
const std::vector<WorkloadProfile> &spec2006Profiles();

} // namespace quac::sysperf

#endif // QUAC_SYSPERF_WORKLOADS_HH

/**
 * @file
 * Workload profiles for the system performance studies.
 *
 * Two families:
 *
 *  - SPEC CPU2006 memory-behaviour profiles (paper Section 7.3,
 *    Fig 12). The original experiment replays licensed SPEC2006
 *    memory traces in Ramulator; we substitute synthetic traces
 *    parameterized by each workload's published memory-bandwidth
 *    intensity class: what matters for Fig 12 is each workload's
 *    *channel idle fraction* and the burstiness of its accesses,
 *    which these profiles reproduce (memory-bound mcf/lbm/libquantum
 *    leave little idle bandwidth; compute-bound namd/sjeng leave the
 *    channel almost free).
 *
 *  - Entropy-service scenarios: end-to-end workloads for the sharded
 *    entropy service, each pairing a co-running memory-traffic
 *    profile with a population of entropy clients (class, count,
 *    request size, request rate). These drive the service's refill
 *    scheduler instead of the ad-hoc fixed-demand study the Fig 12
 *    path uses.
 */

#ifndef QUAC_SYSPERF_WORKLOADS_HH
#define QUAC_SYSPERF_WORKLOADS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace quac::sysperf
{

/** One workload's memory-behaviour parameters. */
struct WorkloadProfile
{
    std::string name;
    /** Average fraction of channel time busy with demand traffic. */
    double busUtilization = 0.1;
    /** Mean busy-burst length in ns (row-locality proxy). */
    double burstNs = 80.0;
};

/** The 23 SPEC2006 workloads of Fig 12, in the figure's order. */
const std::vector<WorkloadProfile> &spec2006Profiles();

/**
 * One class of entropy-service clients: how many, what they ask
 * for, and how often. Priority maps onto the service's request
 * classes (0 = interactive, 1 = standard, 2 = bulk/buffer-only).
 */
struct EntropyClientClass
{
    std::string name;
    unsigned clients = 1;
    /** Bytes per request. */
    size_t requestBytes = 64;
    /** Requests per millisecond per client. */
    double requestsPerMs = 1.0;
    /** 0 interactive, 1 standard, 2 bulk. */
    unsigned priority = 1;

    /** Aggregate demand of the class in bytes per millisecond. */
    double
    demandBytesPerMs() const
    {
        return static_cast<double>(clients) *
               static_cast<double>(requestBytes) * requestsPerMs;
    }
};

/**
 * An end-to-end entropy-service scenario: the memory traffic the
 * refill work must coexist with, plus the client population that
 * drains the service buffers.
 */
struct ServiceScenario
{
    std::string name;
    WorkloadProfile memoryTraffic;
    std::vector<EntropyClientClass> clientClasses;

    /** Total entropy demand in bytes per millisecond. */
    double demandBytesPerMs() const;
    /** Total number of clients across all classes. */
    unsigned totalClients() const;
};

/**
 * The entropy-service scenario set: client mixes from nearly-idle
 * desktops to a key-server under memory-bound co-runners.
 */
const std::vector<ServiceScenario> &serviceScenarios();

/** Scenario by name (fatal if unknown; names listed in the error). */
const ServiceScenario &serviceScenario(const std::string &name);

} // namespace quac::sysperf

#endif // QUAC_SYSPERF_WORKLOADS_HH

#include "sysperf/channel_sim.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "common/rng.hh"

namespace quac::sysperf
{

ChannelActivity
ChannelActivity::generate(const WorkloadProfile &profile,
                          double window_ns, uint64_t seed)
{
    QUAC_ASSERT(window_ns > 0.0, "window=%f", window_ns);
    QUAC_ASSERT(profile.busUtilization >= 0.0 &&
                profile.busUtilization < 1.0,
                "utilization=%f", profile.busUtilization);

    ChannelActivity activity;
    activity.windowNs_ = window_ns;
    if (profile.busUtilization <= 0.0)
        return activity;

    Xoshiro256pp rng(seed);
    double mean_busy = profile.burstNs;
    double mean_idle = mean_busy *
                       (1.0 - profile.busUtilization) /
                       profile.busUtilization;

    auto exponential = [&](double mean) {
        double u = 0.0;
        while (u <= 0.0)
            u = rng.uniform();
        return -mean * std::log(u);
    };

    // Start mid-pattern: begin with an idle gap half the time.
    double t = rng.bernoulli(0.5) ? exponential(mean_idle) : 0.0;
    while (t < window_ns) {
        double busy_len = exponential(mean_busy);
        double end = std::min(t + busy_len, window_ns);
        activity.busy_.emplace_back(t, end);
        t = end + exponential(mean_idle);
    }
    return activity;
}

std::vector<std::pair<double, double>>
ChannelActivity::idleIntervals() const
{
    std::vector<std::pair<double, double>> idle;
    double cursor = 0.0;
    for (const auto &[start, end] : busy_) {
        if (start > cursor)
            idle.emplace_back(cursor, start);
        cursor = end;
    }
    if (cursor < windowNs_)
        idle.emplace_back(cursor, windowNs_);
    return idle;
}

double
ChannelActivity::idleFraction() const
{
    double busy_total = 0.0;
    for (const auto &[start, end] : busy_)
        busy_total += end - start;
    return windowNs_ > 0.0 ? 1.0 - busy_total / windowNs_ : 0.0;
}

InjectionResult
injectQuac(const ChannelActivity &activity, double iteration_ns,
           double bits_per_iteration, double reentry_overhead_ns)
{
    QUAC_ASSERT(iteration_ns > 0.0 && bits_per_iteration > 0.0,
                "iteration=%f bits=%f", iteration_ns,
                bits_per_iteration);

    InjectionResult result;
    result.idleFraction = activity.idleFraction();

    // QUAC-TRNG work is injected at command granularity (paper
    // Section 7.3): an interrupted iteration resumes in the next
    // idle interval, so every gap longer than the re-entry overhead
    // contributes fractional progress.
    double idle_total = 0.0;
    double used_total = 0.0;
    for (const auto &[start, end] : activity.idleIntervals()) {
        double len = end - start;
        idle_total += len;
        double usable = len - reentry_overhead_ns;
        if (usable <= 0.0)
            continue;
        used_total += usable;
    }
    result.iterations = used_total / iteration_ns;
    result.bits = result.iterations * bits_per_iteration;
    result.idleUsedFraction =
        idle_total > 0.0 ? used_total / idle_total : 0.0;
    return result;
}

std::vector<WorkloadTrngResult>
runSystemStudy(double iteration_ns, double bits_per_iteration,
               unsigned channels, double window_ns, uint64_t seed)
{
    std::vector<WorkloadTrngResult> results;
    for (const WorkloadProfile &profile : spec2006Profiles()) {
        WorkloadTrngResult result;
        result.name = profile.name;
        double bits = 0.0;
        double idle = 0.0;
        for (unsigned channel = 0; channel < channels; ++channel) {
            uint64_t sm = seed ^ (0x9E3779B97F4A7C15ULL *
                                  (channel + 1));
            for (char c : profile.name)
                sm = sm * 131 + static_cast<unsigned char>(c);
            ChannelActivity activity = ChannelActivity::generate(
                profile, window_ns, sm);
            InjectionResult injection = injectQuac(
                activity, iteration_ns, bits_per_iteration);
            bits += injection.bits;
            idle += injection.idleFraction;
        }
        result.throughputGbps = bits / window_ns;
        result.idleFraction = idle / channels;
        results.push_back(std::move(result));
    }
    return results;
}

} // namespace quac::sysperf

#include "sysperf/channel_sim.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "common/rng.hh"

namespace quac::sysperf
{

ChannelActivity
ChannelActivity::generate(const WorkloadProfile &profile,
                          double window_ns, uint64_t seed)
{
    QUAC_ASSERT(window_ns > 0.0, "window=%f", window_ns);
    QUAC_ASSERT(profile.busUtilization >= 0.0 &&
                profile.busUtilization < 1.0,
                "utilization=%f", profile.busUtilization);

    ChannelActivity activity;
    activity.windowNs_ = window_ns;
    if (profile.busUtilization <= 0.0)
        return activity;

    Xoshiro256pp rng(seed);
    double mean_busy = profile.burstNs;
    double mean_idle = mean_busy *
                       (1.0 - profile.busUtilization) /
                       profile.busUtilization;

    auto exponential = [&](double mean) {
        double u = 0.0;
        while (u <= 0.0)
            u = rng.uniform();
        return -mean * std::log(u);
    };

    // Start mid-pattern: begin with an idle gap half the time.
    double t = rng.bernoulli(0.5) ? exponential(mean_idle) : 0.0;
    while (t < window_ns) {
        double busy_len = exponential(mean_busy);
        double end = std::min(t + busy_len, window_ns);
        activity.busy_.emplace_back(t, end);
        t = end + exponential(mean_idle);
    }
    return activity;
}

std::vector<std::pair<double, double>>
ChannelActivity::idleIntervals() const
{
    std::vector<std::pair<double, double>> idle;
    double cursor = 0.0;
    for (const auto &[start, end] : busy_) {
        if (start > cursor)
            idle.emplace_back(cursor, start);
        cursor = end;
    }
    if (cursor < windowNs_)
        idle.emplace_back(cursor, windowNs_);
    return idle;
}

double
ChannelActivity::idleFraction() const
{
    double busy_total = 0.0;
    for (const auto &[start, end] : busy_)
        busy_total += end - start;
    return windowNs_ > 0.0 ? 1.0 - busy_total / windowNs_ : 0.0;
}

namespace
{

/** Stable per-channel seed: mix the channel index and profile name. */
uint64_t
channelSeed(uint64_t seed, size_t channel, const std::string &name)
{
    uint64_t mixed = seed ^ (0x9E3779B97F4A7C15ULL * (channel + 1));
    for (char c : name)
        mixed = mixed * 131 + static_cast<unsigned char>(c);
    return mixed;
}

} // anonymous namespace

SystemActivity
SystemActivity::generate(const std::vector<WorkloadProfile> &per_channel,
                         double window_ns, uint64_t seed)
{
    QUAC_ASSERT(!per_channel.empty(), "no channels");
    SystemActivity system;
    system.windowNs_ = window_ns;
    system.profiles_ = per_channel;
    system.channels_.reserve(per_channel.size());
    for (size_t c = 0; c < per_channel.size(); ++c) {
        system.channels_.push_back(ChannelActivity::generate(
            per_channel[c], window_ns,
            channelSeed(seed, c, per_channel[c].name)));
    }
    return system;
}

const ChannelActivity &
SystemActivity::channel(size_t c) const
{
    QUAC_ASSERT(c < channels_.size(), "channel %zu of %zu", c,
                channels_.size());
    return channels_[c];
}

const WorkloadProfile &
SystemActivity::profile(size_t c) const
{
    QUAC_ASSERT(c < profiles_.size(), "channel %zu of %zu", c,
                profiles_.size());
    return profiles_[c];
}

double
SystemActivity::meanIdleFraction() const
{
    if (channels_.empty())
        return 0.0;
    double idle = 0.0;
    for (const ChannelActivity &channel : channels_)
        idle += channel.idleFraction();
    return idle / static_cast<double>(channels_.size());
}

InjectionResult
injectQuac(const ChannelActivity &activity, double iteration_ns,
           double bits_per_iteration, double reentry_overhead_ns)
{
    QUAC_ASSERT(iteration_ns > 0.0 && bits_per_iteration > 0.0,
                "iteration=%f bits=%f", iteration_ns,
                bits_per_iteration);

    InjectionResult result;
    result.idleFraction = activity.idleFraction();

    // QUAC-TRNG work is injected at command granularity (paper
    // Section 7.3): an interrupted iteration resumes in the next
    // idle interval, so every gap longer than the re-entry overhead
    // contributes fractional progress.
    double idle_total = 0.0;
    double used_total = 0.0;
    for (const auto &[start, end] : activity.idleIntervals()) {
        double len = end - start;
        idle_total += len;
        double usable = len - reentry_overhead_ns;
        if (usable <= 0.0)
            continue;
        used_total += usable;
    }
    result.iterations = used_total / iteration_ns;
    result.bits = result.iterations * bits_per_iteration;
    result.idleUsedFraction =
        idle_total > 0.0 ? used_total / idle_total : 0.0;
    return result;
}

const char *
fairnessPolicyName(FairnessPolicy policy)
{
    switch (policy) {
    case FairnessPolicy::Fcfs: return "fcfs";
    case FairnessPolicy::RngPriority: return "rng-priority";
    case FairnessPolicy::BufferedFair: return "buffered-fair";
    }
    return "?";
}

FairnessPolicy
fairnessPolicyFromName(const std::string &name)
{
    for (FairnessPolicy policy :
         {FairnessPolicy::Fcfs, FairnessPolicy::RngPriority,
          FairnessPolicy::BufferedFair}) {
        if (name == fairnessPolicyName(policy))
            return policy;
    }
    fatal("unknown fairness policy '%s' (fcfs, rng-priority, "
          "buffered-fair)",
          name.c_str());
}

namespace
{

/** Idle time usable for refill in (from, window), net of re-entry. */
double
usableIdleAfter(const ChannelActivity &activity, double from,
                double reentry_overhead_ns)
{
    double usable = 0.0;
    for (const auto &[start, end] : activity.idleIntervals()) {
        double lo = std::max(start, from);
        if (lo >= end)
            continue;
        // A gap entered fresh (or re-entered after the prioritized
        // prefix) pays the re-entry overhead once.
        usable += std::max(0.0, end - lo - reentry_overhead_ns);
    }
    return usable;
}

/** Demand-burst time overlapping the prioritized prefix [0, len). */
double
busyOverlap(const ChannelActivity &activity, double len)
{
    double overlap = 0.0;
    for (const auto &[start, end] : activity.busyIntervals()) {
        if (start >= len)
            break;
        overlap += std::min(end, len) - start;
    }
    return overlap;
}

} // anonymous namespace

RefillGrant
grantRefill(const ChannelActivity &activity, double needed_ns,
            FairnessPolicy policy, double urgent_ns,
            double reentry_overhead_ns)
{
    QUAC_ASSERT(needed_ns >= 0.0 && urgent_ns >= 0.0 &&
                urgent_ns <= needed_ns + 1e-9,
                "needed=%f urgent=%f", needed_ns, urgent_ns);

    double window = activity.windowNs();
    double busy_total = window * (1.0 - activity.idleFraction());

    RefillGrant grant;
    grant.usableIdleNs =
        usableIdleAfter(activity, 0.0, reentry_overhead_ns);

    // The prioritized part runs first, occupying the head of the
    // window and displacing any demand bursts it overlaps.
    double prioritized = 0.0;
    switch (policy) {
    case FairnessPolicy::Fcfs:
        prioritized = 0.0;
        break;
    case FairnessPolicy::RngPriority:
        prioritized = needed_ns;
        break;
    case FairnessPolicy::BufferedFair:
        prioritized = urgent_ns;
        break;
    }
    prioritized = std::min(prioritized, window);
    grant.urgentNs = prioritized;
    grant.stolenBusyNs = busyOverlap(activity, prioritized);

    // The remainder queues FCFS-style behind demand traffic in the
    // idle gaps after the prioritized prefix.
    double remainder = needed_ns - prioritized;
    double idle_budget =
        usableIdleAfter(activity, prioritized, reentry_overhead_ns);
    grant.grantedNs = prioritized + std::min(remainder, idle_budget);

    grant.memSlowdown =
        busy_total > 0.0 ? grant.stolenBusyNs / busy_total : 0.0;
    return grant;
}

double
SystemInjection::bits() const
{
    double total = 0.0;
    for (const InjectionResult &injection : perChannel)
        total += injection.bits;
    return total;
}

double
SystemInjection::throughputGbps(double window_ns) const
{
    return window_ns > 0.0 ? bits() / window_ns : 0.0;
}

double
SystemInjection::meanIdleFraction() const
{
    if (perChannel.empty())
        return 0.0;
    double idle = 0.0;
    for (const InjectionResult &injection : perChannel)
        idle += injection.idleFraction;
    return idle / static_cast<double>(perChannel.size());
}

SystemInjection
injectQuac(const SystemActivity &system, double iteration_ns,
           double bits_per_iteration, double reentry_overhead_ns)
{
    SystemInjection injection;
    injection.perChannel.reserve(system.channels());
    for (size_t c = 0; c < system.channels(); ++c) {
        injection.perChannel.push_back(
            injectQuac(system.channel(c), iteration_ns,
                       bits_per_iteration, reentry_overhead_ns));
    }
    return injection;
}

std::vector<WorkloadProfile>
corunnerMix(const WorkloadProfile &primary, unsigned channels)
{
    QUAC_ASSERT(channels >= 1, "channels=%u", channels);
    const std::vector<WorkloadProfile> &profiles = spec2006Profiles();
    size_t base = 0;
    for (size_t i = 0; i < profiles.size(); ++i) {
        if (profiles[i].name == primary.name) {
            base = i;
            break;
        }
    }
    std::vector<WorkloadProfile> mix;
    mix.reserve(channels);
    mix.push_back(primary);
    // Stride-7 walk: 7 is coprime to the 23-entry list, so the
    // co-runners cycle through every intensity class before
    // repeating.
    for (unsigned c = 1; c < channels; ++c)
        mix.push_back(profiles[(base + 7ull * c) % profiles.size()]);
    return mix;
}

WorkloadTrngResult
fig12Point(const std::vector<WorkloadProfile> &per_channel,
           double iteration_ns, double bits_per_iteration,
           double window_ns, uint64_t seed)
{
    SystemActivity system =
        SystemActivity::generate(per_channel, window_ns, seed);
    SystemInjection injection = injectQuac(system, iteration_ns,
                                           bits_per_iteration);

    WorkloadTrngResult result;
    result.name = per_channel.front().name;
    result.throughputGbps = injection.throughputGbps(window_ns);
    result.idleFraction = injection.meanIdleFraction();
    for (size_t c = 0; c < per_channel.size(); ++c) {
        result.channelWorkloads.push_back(per_channel[c].name);
        result.perChannelGbps.push_back(
            injection.perChannel[c].bits / window_ns);
    }
    return result;
}

std::vector<WorkloadTrngResult>
runSystemStudy(double iteration_ns, double bits_per_iteration,
               unsigned channels, double window_ns, uint64_t seed,
               bool heterogeneous)
{
    std::vector<WorkloadTrngResult> results;
    for (const WorkloadProfile &profile : spec2006Profiles()) {
        std::vector<WorkloadProfile> mix =
            heterogeneous
                ? corunnerMix(profile, channels)
                : std::vector<WorkloadProfile>(channels, profile);
        results.push_back(fig12Point(mix, iteration_ns,
                                     bits_per_iteration, window_ns,
                                     seed));
    }
    return results;
}

} // namespace quac::sysperf

#include "sysperf/channel_sim.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "common/rng.hh"

namespace quac::sysperf
{

ChannelActivity
ChannelActivity::generate(const WorkloadProfile &profile,
                          double window_ns, uint64_t seed)
{
    QUAC_ASSERT(window_ns > 0.0, "window=%f", window_ns);
    QUAC_ASSERT(profile.busUtilization >= 0.0 &&
                profile.busUtilization < 1.0,
                "utilization=%f", profile.busUtilization);

    ChannelActivity activity;
    activity.windowNs_ = window_ns;
    if (profile.busUtilization <= 0.0)
        return activity;

    Xoshiro256pp rng(seed);
    double mean_busy = profile.burstNs;
    double mean_idle = mean_busy *
                       (1.0 - profile.busUtilization) /
                       profile.busUtilization;

    auto exponential = [&](double mean) {
        double u = 0.0;
        while (u <= 0.0)
            u = rng.uniform();
        return -mean * std::log(u);
    };

    // Start mid-pattern: begin with an idle gap half the time.
    double t = rng.bernoulli(0.5) ? exponential(mean_idle) : 0.0;
    while (t < window_ns) {
        double busy_len = exponential(mean_busy);
        double end = std::min(t + busy_len, window_ns);
        activity.busy_.emplace_back(t, end);
        t = end + exponential(mean_idle);
    }
    return activity;
}

std::vector<std::pair<double, double>>
ChannelActivity::idleIntervals() const
{
    std::vector<std::pair<double, double>> idle;
    double cursor = 0.0;
    for (const auto &[start, end] : busy_) {
        if (start > cursor)
            idle.emplace_back(cursor, start);
        cursor = end;
    }
    if (cursor < windowNs_)
        idle.emplace_back(cursor, windowNs_);
    return idle;
}

double
ChannelActivity::idleFraction() const
{
    double busy_total = 0.0;
    for (const auto &[start, end] : busy_)
        busy_total += end - start;
    return windowNs_ > 0.0 ? 1.0 - busy_total / windowNs_ : 0.0;
}

InjectionResult
injectQuac(const ChannelActivity &activity, double iteration_ns,
           double bits_per_iteration, double reentry_overhead_ns)
{
    QUAC_ASSERT(iteration_ns > 0.0 && bits_per_iteration > 0.0,
                "iteration=%f bits=%f", iteration_ns,
                bits_per_iteration);

    InjectionResult result;
    result.idleFraction = activity.idleFraction();

    // QUAC-TRNG work is injected at command granularity (paper
    // Section 7.3): an interrupted iteration resumes in the next
    // idle interval, so every gap longer than the re-entry overhead
    // contributes fractional progress.
    double idle_total = 0.0;
    double used_total = 0.0;
    for (const auto &[start, end] : activity.idleIntervals()) {
        double len = end - start;
        idle_total += len;
        double usable = len - reentry_overhead_ns;
        if (usable <= 0.0)
            continue;
        used_total += usable;
    }
    result.iterations = used_total / iteration_ns;
    result.bits = result.iterations * bits_per_iteration;
    result.idleUsedFraction =
        idle_total > 0.0 ? used_total / idle_total : 0.0;
    return result;
}

const char *
fairnessPolicyName(FairnessPolicy policy)
{
    switch (policy) {
    case FairnessPolicy::Fcfs: return "fcfs";
    case FairnessPolicy::RngPriority: return "rng-priority";
    case FairnessPolicy::BufferedFair: return "buffered-fair";
    }
    return "?";
}

namespace
{

/** Idle time usable for refill in (from, window), net of re-entry. */
double
usableIdleAfter(const ChannelActivity &activity, double from,
                double reentry_overhead_ns)
{
    double usable = 0.0;
    for (const auto &[start, end] : activity.idleIntervals()) {
        double lo = std::max(start, from);
        if (lo >= end)
            continue;
        // A gap entered fresh (or re-entered after the prioritized
        // prefix) pays the re-entry overhead once.
        usable += std::max(0.0, end - lo - reentry_overhead_ns);
    }
    return usable;
}

/** Demand-burst time overlapping the prioritized prefix [0, len). */
double
busyOverlap(const ChannelActivity &activity, double len)
{
    double overlap = 0.0;
    for (const auto &[start, end] : activity.busyIntervals()) {
        if (start >= len)
            break;
        overlap += std::min(end, len) - start;
    }
    return overlap;
}

} // anonymous namespace

RefillGrant
grantRefill(const ChannelActivity &activity, double needed_ns,
            FairnessPolicy policy, double urgent_ns,
            double reentry_overhead_ns)
{
    QUAC_ASSERT(needed_ns >= 0.0 && urgent_ns >= 0.0 &&
                urgent_ns <= needed_ns + 1e-9,
                "needed=%f urgent=%f", needed_ns, urgent_ns);

    double window = activity.windowNs();
    double busy_total = window * (1.0 - activity.idleFraction());

    RefillGrant grant;
    grant.usableIdleNs =
        usableIdleAfter(activity, 0.0, reentry_overhead_ns);

    // The prioritized part runs first, occupying the head of the
    // window and displacing any demand bursts it overlaps.
    double prioritized = 0.0;
    switch (policy) {
    case FairnessPolicy::Fcfs:
        prioritized = 0.0;
        break;
    case FairnessPolicy::RngPriority:
        prioritized = needed_ns;
        break;
    case FairnessPolicy::BufferedFair:
        prioritized = urgent_ns;
        break;
    }
    prioritized = std::min(prioritized, window);
    grant.urgentNs = prioritized;
    grant.stolenBusyNs = busyOverlap(activity, prioritized);

    // The remainder queues FCFS-style behind demand traffic in the
    // idle gaps after the prioritized prefix.
    double remainder = needed_ns - prioritized;
    double idle_budget =
        usableIdleAfter(activity, prioritized, reentry_overhead_ns);
    grant.grantedNs = prioritized + std::min(remainder, idle_budget);

    grant.memSlowdown =
        busy_total > 0.0 ? grant.stolenBusyNs / busy_total : 0.0;
    return grant;
}

std::vector<WorkloadTrngResult>
runSystemStudy(double iteration_ns, double bits_per_iteration,
               unsigned channels, double window_ns, uint64_t seed)
{
    std::vector<WorkloadTrngResult> results;
    for (const WorkloadProfile &profile : spec2006Profiles()) {
        WorkloadTrngResult result;
        result.name = profile.name;
        double bits = 0.0;
        double idle = 0.0;
        for (unsigned channel = 0; channel < channels; ++channel) {
            uint64_t sm = seed ^ (0x9E3779B97F4A7C15ULL *
                                  (channel + 1));
            for (char c : profile.name)
                sm = sm * 131 + static_cast<unsigned char>(c);
            ChannelActivity activity = ChannelActivity::generate(
                profile, window_ns, sm);
            InjectionResult injection = injectQuac(
                activity, iteration_ns, bits_per_iteration);
            bits += injection.bits;
            idle += injection.idleFraction;
        }
        result.throughputGbps = bits / window_ns;
        result.idleFraction = idle / channels;
        results.push_back(std::move(result));
    }
    return results;
}

} // namespace quac::sysperf

/**
 * @file
 * Memory-channel occupancy simulation and QUAC command injection
 * (paper Section 7.3): generate a channel's busy/idle timeline under
 * a workload, then fit QUAC-TRNG iterations into the idle intervals.
 */

#ifndef QUAC_SYSPERF_CHANNEL_SIM_HH
#define QUAC_SYSPERF_CHANNEL_SIM_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "sysperf/workloads.hh"

namespace quac::sysperf
{

/** Busy/idle timeline of one channel over a simulation window. */
class ChannelActivity
{
  public:
    /**
     * Generate a synthetic timeline: busy bursts with exponential
     * lengths (mean = profile.burstNs) separated by exponential idle
     * gaps sized so the long-run busy fraction matches
     * profile.busUtilization.
     *
     * @param profile workload behaviour.
     * @param window_ns timeline length.
     * @param seed generator seed.
     */
    static ChannelActivity generate(const WorkloadProfile &profile,
                                    double window_ns, uint64_t seed);

    /** [start, end) busy intervals, ascending and disjoint. */
    const std::vector<std::pair<double, double>> &busyIntervals() const
    {
        return busy_;
    }

    /** [start, end) idle intervals between the busy ones. */
    std::vector<std::pair<double, double>> idleIntervals() const;

    /** Fraction of the window with no demand traffic. */
    double idleFraction() const;

    double windowNs() const { return windowNs_; }

  private:
    std::vector<std::pair<double, double>> busy_;
    double windowNs_ = 0.0;
};

/** Result of injecting QUAC-TRNG work into a channel's idle time. */
struct InjectionResult
{
    double iterations = 0.0;      ///< QUAC iterations completed.
    double bits = 0.0;            ///< Random bits produced.
    double idleFraction = 0.0;    ///< Channel idle fraction.
    double idleUsedFraction = 0.0; ///< Idle time actually used.

    /** TRNG throughput over the window, in Gb/s. */
    double throughputGbps(double window_ns) const
    {
        return window_ns > 0.0 ? bits / window_ns : 0.0;
    }
};

/**
 * Fit QUAC-TRNG work into a channel's idle intervals at command
 * granularity: each interval first pays a re-entry overhead
 * (draining demand traffic / reissuing state), and the remainder
 * contributes fractional iteration progress at a rate of
 * @p bits_per_iteration random bits per @p iteration_ns.
 */
InjectionResult injectQuac(const ChannelActivity &activity,
                           double iteration_ns,
                           double bits_per_iteration,
                           double reentry_overhead_ns = 20.0);

/**
 * How entropy-service refill traffic is arbitrated against regular
 * memory traffic on the channel (DR-STRaNGe, Bostanci et al., HPCA
 * 2022: an end-to-end DRAM-TRNG system must pick a fairness point
 * between RNG starvation and memory slowdown).
 */
enum class FairnessPolicy
{
    /** Refill queues behind demand traffic: idle bandwidth only. */
    Fcfs,
    /** Refill preempts demand traffic until the need is met. */
    RngPriority,
    /**
     * Refill normally uses idle bandwidth only, but buffer levels
     * below the panic watermark escalate that part of the demand to
     * RngPriority (DR-STRaNGe's buffered fairness point).
     */
    BufferedFair,
};

/** Display name ("fcfs", "rng-priority", "buffered-fair"). */
const char *fairnessPolicyName(FairnessPolicy policy);

/** Channel time granted to a refill request under a policy. */
struct RefillGrant
{
    /** Channel time granted to RNG refill, in ns. */
    double grantedNs = 0.0;
    /**
     * Prioritized prefix of the grant: channel time scheduled ahead
     * of demand traffic (idle or not). Its demand overlap — the part
     * actually taken from memory traffic — is stolenBusyNs.
     */
    double urgentNs = 0.0;
    /** Idle time usable after re-entry overheads (FCFS budget). */
    double usableIdleNs = 0.0;
    /** Demand traffic displaced by prioritized refill. */
    double stolenBusyNs = 0.0;
    /** Slowdown charged to memory traffic: stolen / total busy. */
    double memSlowdown = 0.0;
};

/**
 * Arbitrate @p needed_ns of refill channel time against the demand
 * traffic of @p activity under @p policy. @p urgent_ns is the part
 * of the need below the service's panic watermark (only meaningful
 * for BufferedFair, which escalates exactly that part); prioritized
 * refill occupies the head of the window, displacing overlapped
 * demand bursts, while FCFS-style refill pays @p reentry_overhead_ns
 * per idle gap like injectQuac().
 */
RefillGrant grantRefill(const ChannelActivity &activity,
                        double needed_ns, FairnessPolicy policy,
                        double urgent_ns = 0.0,
                        double reentry_overhead_ns = 20.0);

/** Fig 12 datapoint: a workload's TRNG throughput on 4 channels. */
struct WorkloadTrngResult
{
    std::string name;
    double throughputGbps = 0.0;
    double idleFraction = 0.0;
};

/**
 * Run the full Fig 12 experiment: every workload across
 * @p channels channels.
 *
 * @param iteration_ns per-channel QUAC iteration length (from the
 *        command scheduler).
 * @param bits_per_iteration bits per iteration (256 x SIB x banks).
 */
std::vector<WorkloadTrngResult>
runSystemStudy(double iteration_ns, double bits_per_iteration,
               unsigned channels = 4, double window_ns = 2.0e6,
               uint64_t seed = 1);

} // namespace quac::sysperf

#endif // QUAC_SYSPERF_CHANNEL_SIM_HH

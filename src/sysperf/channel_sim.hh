/**
 * @file
 * Memory-channel occupancy simulation and QUAC command injection
 * (paper Section 7.3): generate each channel's busy/idle timeline
 * under its workload, then fit QUAC-TRNG iterations into the idle
 * intervals. SystemActivity holds the N per-channel timelines of a
 * multi-channel system, each with its own (possibly heterogeneous)
 * co-running workload.
 */

#ifndef QUAC_SYSPERF_CHANNEL_SIM_HH
#define QUAC_SYSPERF_CHANNEL_SIM_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sysperf/workloads.hh"

namespace quac::sysperf
{

/** Busy/idle timeline of one channel over a simulation window. */
class ChannelActivity
{
  public:
    /**
     * Generate a synthetic timeline: busy bursts with exponential
     * lengths (mean = profile.burstNs) separated by exponential idle
     * gaps sized so the long-run busy fraction matches
     * profile.busUtilization.
     *
     * @param profile workload behaviour.
     * @param window_ns timeline length.
     * @param seed generator seed.
     */
    static ChannelActivity generate(const WorkloadProfile &profile,
                                    double window_ns, uint64_t seed);

    /** [start, end) busy intervals, ascending and disjoint. */
    const std::vector<std::pair<double, double>> &busyIntervals() const
    {
        return busy_;
    }

    /** [start, end) idle intervals between the busy ones. */
    std::vector<std::pair<double, double>> idleIntervals() const;

    /** Fraction of the window with no demand traffic. */
    double idleFraction() const;

    double windowNs() const { return windowNs_; }

  private:
    std::vector<std::pair<double, double>> busy_;
    double windowNs_ = 0.0;
};

/**
 * Per-channel busy/idle timelines of an N-channel system over one
 * simulation window. Each channel runs its own workload profile, so
 * heterogeneous co-runner mixes (one memory-bound channel next to
 * three nearly idle ones) are first-class rather than one profile
 * cloned N ways.
 */
class SystemActivity
{
  public:
    /**
     * Generate one timeline per entry of @p per_channel. Channel c's
     * seed is derived deterministically from @p seed, c, and the
     * profile name, so per-channel streams are independent and the
     * whole system replays from one seed.
     */
    static SystemActivity
    generate(const std::vector<WorkloadProfile> &per_channel,
             double window_ns, uint64_t seed);

    size_t channels() const { return channels_.size(); }
    const ChannelActivity &channel(size_t c) const;
    /** Profile channel @p c was generated from. */
    const WorkloadProfile &profile(size_t c) const;
    double windowNs() const { return windowNs_; }

    /** Mean idle fraction across channels. */
    double meanIdleFraction() const;

  private:
    std::vector<ChannelActivity> channels_;
    std::vector<WorkloadProfile> profiles_;
    double windowNs_ = 0.0;
};

/** Result of injecting QUAC-TRNG work into a channel's idle time. */
struct InjectionResult
{
    double iterations = 0.0;      ///< QUAC iterations completed.
    double bits = 0.0;            ///< Random bits produced.
    double idleFraction = 0.0;    ///< Channel idle fraction.
    double idleUsedFraction = 0.0; ///< Idle time actually used.

    /** TRNG throughput over the window, in Gb/s. */
    double throughputGbps(double window_ns) const
    {
        return window_ns > 0.0 ? bits / window_ns : 0.0;
    }
};

/**
 * Fit QUAC-TRNG work into a channel's idle intervals at command
 * granularity: each interval first pays a re-entry overhead
 * (draining demand traffic / reissuing state), and the remainder
 * contributes fractional iteration progress at a rate of
 * @p bits_per_iteration random bits per @p iteration_ns.
 */
InjectionResult injectQuac(const ChannelActivity &activity,
                           double iteration_ns,
                           double bits_per_iteration,
                           double reentry_overhead_ns = 20.0);

/** System-level injection: one InjectionResult per channel. */
struct SystemInjection
{
    std::vector<InjectionResult> perChannel;

    /** Total random bits across all channels. */
    double bits() const;
    /** Aggregate TRNG throughput over the window, in Gb/s. */
    double throughputGbps(double window_ns) const;
    /** Mean channel idle fraction. */
    double meanIdleFraction() const;
};

/**
 * Inject QUAC-TRNG work into every channel of @p system
 * independently (each channel's TRNG only sees that channel's idle
 * intervals).
 */
SystemInjection injectQuac(const SystemActivity &system,
                           double iteration_ns,
                           double bits_per_iteration,
                           double reentry_overhead_ns = 20.0);

/**
 * How entropy-service refill traffic is arbitrated against regular
 * memory traffic on the channel (DR-STRaNGe, Bostanci et al., HPCA
 * 2022: an end-to-end DRAM-TRNG system must pick a fairness point
 * between RNG starvation and memory slowdown).
 */
enum class FairnessPolicy
{
    /** Refill queues behind demand traffic: idle bandwidth only. */
    Fcfs,
    /** Refill preempts demand traffic until the need is met. */
    RngPriority,
    /**
     * Refill normally uses idle bandwidth only, but buffer levels
     * below the panic watermark escalate that part of the demand to
     * RngPriority (DR-STRaNGe's buffered fairness point).
     */
    BufferedFair,
};

/** Display name ("fcfs", "rng-priority", "buffered-fair"). */
const char *fairnessPolicyName(FairnessPolicy policy);

/** Parse a policy display name back (fatal on unknown names). */
FairnessPolicy fairnessPolicyFromName(const std::string &name);

/** Channel time granted to a refill request under a policy. */
struct RefillGrant
{
    /** Channel time granted to RNG refill, in ns. */
    double grantedNs = 0.0;
    /**
     * Prioritized prefix of the grant: channel time scheduled ahead
     * of demand traffic (idle or not). Its demand overlap — the part
     * actually taken from memory traffic — is stolenBusyNs.
     */
    double urgentNs = 0.0;
    /** Idle time usable after re-entry overheads (FCFS budget). */
    double usableIdleNs = 0.0;
    /** Demand traffic displaced by prioritized refill. */
    double stolenBusyNs = 0.0;
    /** Slowdown charged to memory traffic: stolen / total busy. */
    double memSlowdown = 0.0;
};

/**
 * Arbitrate @p needed_ns of refill channel time against the demand
 * traffic of @p activity under @p policy. @p urgent_ns is the part
 * of the need below the service's panic watermark (only meaningful
 * for BufferedFair, which escalates exactly that part); prioritized
 * refill occupies the head of the window, displacing overlapped
 * demand bursts, while FCFS-style refill pays @p reentry_overhead_ns
 * per idle gap like injectQuac().
 */
RefillGrant grantRefill(const ChannelActivity &activity,
                        double needed_ns, FairnessPolicy policy,
                        double urgent_ns = 0.0,
                        double reentry_overhead_ns = 20.0);

/** Fig 12 datapoint: a workload's TRNG throughput on N channels. */
struct WorkloadTrngResult
{
    std::string name;
    double throughputGbps = 0.0;
    double idleFraction = 0.0;
    /** Workload run on each channel (name repeated if cloned). */
    std::vector<std::string> channelWorkloads;
    /** Per-channel TRNG throughput contribution, in Gb/s. */
    std::vector<double> perChannelGbps;
};

/**
 * Deterministic heterogeneous co-runner assignment for a Fig-12 row:
 * @p primary runs on channel 0 and the remaining channels run its
 * neighbours in the SPEC2006 profile list (stride 7 walk, so mixes
 * span the intensity classes rather than clustering).
 */
std::vector<WorkloadProfile>
corunnerMix(const WorkloadProfile &primary, unsigned channels);

/**
 * One Fig 12 datapoint with real per-channel injection: build a
 * SystemActivity from @p per_channel (one profile per channel),
 * inject QUAC into each channel's own idle intervals, and aggregate.
 * The result is named after channel 0's workload (the row's primary).
 */
WorkloadTrngResult
fig12Point(const std::vector<WorkloadProfile> &per_channel,
           double iteration_ns, double bits_per_iteration,
           double window_ns, uint64_t seed);

/**
 * Run the full Fig 12 experiment: every workload across
 * @p channels channels. With @p heterogeneous false (the paper's
 * configuration) every channel of a row runs the row's workload;
 * with it true the co-runners come from corunnerMix().
 *
 * @param iteration_ns per-channel QUAC iteration length (from the
 *        command scheduler).
 * @param bits_per_iteration bits per iteration (256 x SIB x banks).
 */
std::vector<WorkloadTrngResult>
runSystemStudy(double iteration_ns, double bits_per_iteration,
               unsigned channels = 4, double window_ns = 2.0e6,
               uint64_t seed = 1, bool heterogeneous = false);

} // namespace quac::sysperf

#endif // QUAC_SYSPERF_CHANNEL_SIM_HH

#include "sysperf/workloads.hh"

namespace quac::sysperf
{

const std::vector<WorkloadProfile> &
spec2006Profiles()
{
    // Utilizations reflect the well-known memory-intensity classes of
    // SPEC CPU2006 (e.g. MPKI characterizations in the Ramulator and
    // memory-scheduling literature): lbm/libquantum/mcf/milc/
    // GemsFDTD/leslie3d are memory-bound; namd/sjeng/gobmk/hmmer/
    // dealII/gromacs barely touch DRAM.
    static const std::vector<WorkloadProfile> profiles = {
        {"bzip2", 0.14, 90.0},
        {"gcc", 0.12, 70.0},
        {"mcf", 0.55, 60.0},
        {"milc", 0.45, 120.0},
        {"zeusmp", 0.24, 110.0},
        {"gromacs", 0.07, 80.0},
        {"cactusADM", 0.30, 130.0},
        {"leslie3d", 0.42, 140.0},
        {"namd", 0.03, 60.0},
        {"gobmk", 0.06, 60.0},
        {"dealII", 0.08, 70.0},
        {"soplex", 0.36, 90.0},
        {"hmmer", 0.05, 70.0},
        {"sjeng", 0.04, 60.0},
        {"GemsFDTD", 0.46, 150.0},
        {"libquantum", 0.58, 170.0},
        {"h264ref", 0.10, 80.0},
        {"lbm", 0.65, 160.0},
        {"omnetpp", 0.29, 70.0},
        {"astar", 0.19, 70.0},
        {"wrf", 0.26, 110.0},
        {"sphinx3", 0.34, 90.0},
        {"xalancbmk", 0.24, 70.0},
    };
    return profiles;
}

} // namespace quac::sysperf

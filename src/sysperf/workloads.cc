#include "sysperf/workloads.hh"

#include <string>

#include "common/error.hh"

namespace quac::sysperf
{

const std::vector<WorkloadProfile> &
spec2006Profiles()
{
    // Utilizations reflect the well-known memory-intensity classes of
    // SPEC CPU2006 (e.g. MPKI characterizations in the Ramulator and
    // memory-scheduling literature): lbm/libquantum/mcf/milc/
    // GemsFDTD/leslie3d are memory-bound; namd/sjeng/gobmk/hmmer/
    // dealII/gromacs barely touch DRAM.
    static const std::vector<WorkloadProfile> profiles = {
        {"bzip2", 0.14, 90.0},
        {"gcc", 0.12, 70.0},
        {"mcf", 0.55, 60.0},
        {"milc", 0.45, 120.0},
        {"zeusmp", 0.24, 110.0},
        {"gromacs", 0.07, 80.0},
        {"cactusADM", 0.30, 130.0},
        {"leslie3d", 0.42, 140.0},
        {"namd", 0.03, 60.0},
        {"gobmk", 0.06, 60.0},
        {"dealII", 0.08, 70.0},
        {"soplex", 0.36, 90.0},
        {"hmmer", 0.05, 70.0},
        {"sjeng", 0.04, 60.0},
        {"GemsFDTD", 0.46, 150.0},
        {"libquantum", 0.58, 170.0},
        {"h264ref", 0.10, 80.0},
        {"lbm", 0.65, 160.0},
        {"omnetpp", 0.29, 70.0},
        {"astar", 0.19, 70.0},
        {"wrf", 0.26, 110.0},
        {"sphinx3", 0.34, 90.0},
        {"xalancbmk", 0.24, 70.0},
    };
    return profiles;
}

double
ServiceScenario::demandBytesPerMs() const
{
    double demand = 0.0;
    for (const EntropyClientClass &cls : clientClasses)
        demand += cls.demandBytesPerMs();
    return demand;
}

unsigned
ServiceScenario::totalClients() const
{
    unsigned total = 0;
    for (const EntropyClientClass &cls : clientClasses)
        total += cls.clients;
    return total;
}

const std::vector<ServiceScenario> &
serviceScenarios()
{
    // Memory-traffic profiles reuse the SPEC intensity classes; the
    // client mixes span the design space DR-STRaNGe studies: latency
    // -critical small requests (session keys, nonces), standard mixed
    // traffic, and bulk buffer-only consumers (disk wipe, dataset
    // seeding) that must yield to everyone else. Demand rates are
    // sized against one DDR4-2400 channel's ~3.7 Gb/s busy-channel
    // QUAC rate, so the heavier scenarios genuinely contend with the
    // co-runner for refill bandwidth.
    static const std::vector<ServiceScenario> scenarios = {
        {"idle-desktop",
         {"desktop", 0.05, 70.0},
         {{"keys", 16, 32, 1.0, 0},
          {"apps", 32, 64, 0.5, 1}}},
        {"web-keyserver",
         {"web", 0.25, 90.0},
         {{"tls-handshakes", 4000, 48, 1.5, 0},
          {"session-tokens", 2000, 16, 2.0, 1}}},
        {"mixed-datacenter",
         {"datacenter", 0.45, 120.0},
         {{"tls-handshakes", 1000, 48, 1.5, 0},
          {"montecarlo", 64, 4096, 0.2, 1},
          {"bulk-seeding", 4, 65536, 0.2, 2}}},
        {"memory-bound-corun",
         {"lbm-like", 0.65, 160.0},
         {{"keys", 512, 32, 2.0, 0},
          {"bulk-wipe", 2, 65536, 1.5, 2}}},
    };
    return scenarios;
}

const ServiceScenario &
serviceScenario(const std::string &name)
{
    std::string known;
    for (const ServiceScenario &scenario : serviceScenarios()) {
        if (scenario.name == name)
            return scenario;
        known += known.empty() ? "" : ", ";
        known += scenario.name;
    }
    fatal("unknown service scenario '%s' (known: %s)", name.c_str(),
          known.c_str());
}

} // namespace quac::sysperf

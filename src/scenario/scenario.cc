#include "scenario/scenario.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/error.hh"

namespace quac::scenario
{

const char *
phaseKindName(PhaseKind kind)
{
    switch (kind) {
    case PhaseKind::ChannelFail: return "chfail";
    case PhaseKind::ThermalDrift: return "drift";
    case PhaseKind::FlashCrowd: return "crowd";
    case PhaseKind::Fault: return "fault";
    }
    return "?";
}

namespace
{

/** Split on ':' keeping empty fields (they are parse errors). */
std::vector<std::string>
splitFields(const std::string &text, char sep)
{
    std::vector<std::string> fields;
    size_t start = 0;
    for (;;) {
        size_t pos = text.find(sep, start);
        if (pos == std::string::npos) {
            fields.push_back(text.substr(start));
            return fields;
        }
        fields.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

uint64_t
parseUint(const std::string &field, const char *what,
          const std::string &spec)
{
    if (field.empty())
        fatal("phase '%s': empty %s field", spec.c_str(), what);
    uint64_t value = 0;
    for (char c : field) {
        if (c < '0' || c > '9')
            fatal("phase '%s': %s '%s' is not a non-negative integer",
                  spec.c_str(), what, field.c_str());
        uint64_t digit = static_cast<uint64_t>(c - '0');
        if (value > (UINT64_MAX - digit) / 10)
            fatal("phase '%s': %s '%s' overflows", spec.c_str(), what,
                  field.c_str());
        value = value * 10 + digit;
    }
    return value;
}

double
parseDouble(const std::string &field, const char *what,
            const std::string &spec)
{
    if (field.empty())
        fatal("phase '%s': empty %s field", spec.c_str(), what);
    char *end = nullptr;
    double value = std::strtod(field.c_str(), &end);
    if (end == field.c_str() || *end != '\0')
        fatal("phase '%s': %s '%s' is not a number", spec.c_str(),
              what, field.c_str());
    return value;
}

std::string
trimmed(const std::string &text)
{
    size_t begin = text.find_first_not_of(" \t\n");
    if (begin == std::string::npos)
        return {};
    size_t end = text.find_last_not_of(" \t\n");
    return text.substr(begin, end - begin + 1);
}

/** Half-open tick/byte windows [aStart, aStart+aLen) overlap? */
bool
windowsOverlap(uint64_t a_start, uint64_t a_len, uint64_t b_start,
               uint64_t b_len)
{
    return a_start < b_start + b_len && b_start < a_start + a_len;
}

} // anonymous namespace

PhaseSpec
PhaseSpec::parse(const std::string &text)
{
    std::vector<std::string> fields = splitFields(text, ':');
    if (fields.empty() || fields[0].empty())
        fatal("phase '%s': expected "
              "chfail | drift | crowd | fault first", text.c_str());

    PhaseSpec phase;
    const std::string &kind = fields[0];
    if (kind == "chfail") {
        if (fields.size() != 4)
            fatal("phase '%s': expected "
                  "chfail:<channel>:<start>:<len>", text.c_str());
        phase.kind = PhaseKind::ChannelFail;
        phase.channel = static_cast<size_t>(
            parseUint(fields[1], "channel", text));
        phase.startTick = parseUint(fields[2], "start tick", text);
        phase.lengthTicks = parseUint(fields[3], "length", text);
    } else if (kind == "drift") {
        if (fields.size() != 5)
            fatal("phase '%s': expected "
                  "drift:<start>:<len>:<fromC>:<toC>", text.c_str());
        phase.kind = PhaseKind::ThermalDrift;
        phase.startTick = parseUint(fields[1], "start tick", text);
        phase.lengthTicks = parseUint(fields[2], "length", text);
        phase.fromC = parseDouble(fields[3], "from-temperature", text);
        phase.toC = parseDouble(fields[4], "to-temperature", text);
    } else if (kind == "crowd") {
        if (fields.size() < 4 || fields.size() > 5)
            fatal("phase '%s': expected "
                  "crowd:<start>:<len>:<clients>[:<bytes>]",
                  text.c_str());
        phase.kind = PhaseKind::FlashCrowd;
        phase.startTick = parseUint(fields[1], "start tick", text);
        phase.lengthTicks = parseUint(fields[2], "length", text);
        phase.clients = parseUint(fields[3], "client count", text);
        if (phase.clients == 0)
            fatal("phase '%s': a crowd needs at least one client",
                  text.c_str());
        if (fields.size() == 5) {
            phase.requestBytes = static_cast<size_t>(
                parseUint(fields[4], "request bytes", text));
            if (phase.requestBytes == 0)
                fatal("phase '%s': crowd request bytes must be > 0",
                      text.c_str());
        }
    } else if (kind == "fault") {
        // Everything after "fault:" is a core::FaultSpec, which
        // fatal-parses its own fields (byte-addressed window).
        if (fields.size() < 2)
            fatal("phase '%s': expected fault:<bank>:<mode>:"
                  "<startByte>:<lenBytes>[:<param>]", text.c_str());
        phase.kind = PhaseKind::Fault;
        phase.fault =
            core::FaultSpec::parse(text.substr(kind.size() + 1));
        if (phase.fault.lengthBytes == 0)
            fatal("phase '%s': campaign faults must clear "
                  "(length > 0); permanent faults never let the "
                  "recovery assertions run", text.c_str());
        return phase; // fault windows are byte-, not tick-addressed
    } else {
        fatal("phase '%s': unknown kind '%s' "
              "(chfail | drift | crowd | fault)", text.c_str(),
              kind.c_str());
    }

    if (phase.lengthTicks == 0)
        fatal("phase '%s': zero-length window (the phase would "
              "never act)", text.c_str());
    return phase;
}

std::string
PhaseSpec::describe() const
{
    char buf[160];
    switch (kind) {
    case PhaseKind::ChannelFail:
        std::snprintf(buf, sizeof(buf), "chfail:%zu:%llu:%llu",
                      channel,
                      static_cast<unsigned long long>(startTick),
                      static_cast<unsigned long long>(lengthTicks));
        return buf;
    case PhaseKind::ThermalDrift:
        std::snprintf(buf, sizeof(buf), "drift:%llu:%llu:%g:%g",
                      static_cast<unsigned long long>(startTick),
                      static_cast<unsigned long long>(lengthTicks),
                      fromC, toC);
        return buf;
    case PhaseKind::FlashCrowd:
        std::snprintf(buf, sizeof(buf), "crowd:%llu:%llu:%llu:%zu",
                      static_cast<unsigned long long>(startTick),
                      static_cast<unsigned long long>(lengthTicks),
                      static_cast<unsigned long long>(clients),
                      requestBytes);
        return buf;
    case PhaseKind::Fault:
        return "fault:" + fault.describe();
    }
    return "?";
}

ScenarioSpec
ScenarioSpec::parse(const std::string &text)
{
    ScenarioSpec spec;
    for (const std::string &raw : splitFields(text, ',')) {
        std::string phase = trimmed(raw);
        if (phase.empty()) {
            if (trimmed(text).empty())
                continue; // "" => empty campaign
            fatal("campaign '%s': empty phase between commas",
                  text.c_str());
        }
        spec.phases.push_back(PhaseSpec::parse(phase));
    }
    return spec;
}

void
ScenarioSpec::validate(size_t channels, size_t banks) const
{
    for (const PhaseSpec &phase : phases) {
        if (phase.kind == PhaseKind::ChannelFail &&
            phase.channel >= channels) {
            fatal("phase '%s': channel %zu of %zu",
                  phase.describe().c_str(), phase.channel, channels);
        }
        if (phase.kind == PhaseKind::Fault &&
            phase.fault.bank >= banks) {
            fatal("phase '%s': bank %zu of %zu",
                  phase.describe().c_str(), phase.fault.bank, banks);
        }
    }
    // Same-kind same-target phases must not overlap: a channel
    // cannot fail while failed, the one module has one temperature,
    // concurrent crowds make the admission accounting unattributable,
    // and stacked fault windows on one bank hide each other. Compose
    // across kinds/targets freely.
    for (size_t i = 0; i < phases.size(); ++i) {
        for (size_t j = i + 1; j < phases.size(); ++j) {
            const PhaseSpec &a = phases[i];
            const PhaseSpec &b = phases[j];
            if (a.kind != b.kind)
                continue;
            bool overlap = false;
            switch (a.kind) {
            case PhaseKind::ChannelFail:
                // The recovery edge at start+len still acts on the
                // channel, so back-to-back windows need a gap.
                overlap = a.channel == b.channel &&
                          windowsOverlap(a.startTick,
                                         a.lengthTicks + 1,
                                         b.startTick,
                                         b.lengthTicks + 1);
                break;
            case PhaseKind::ThermalDrift:
            case PhaseKind::FlashCrowd:
                overlap = windowsOverlap(a.startTick, a.lengthTicks,
                                         b.startTick, b.lengthTicks);
                break;
            case PhaseKind::Fault:
                overlap = a.fault.bank == b.fault.bank &&
                          windowsOverlap(a.fault.startByte,
                                         a.fault.lengthBytes,
                                         b.fault.startByte,
                                         b.fault.lengthBytes);
                break;
            }
            if (overlap) {
                fatal("campaign: phases '%s' and '%s' overlap on "
                      "the same target",
                      a.describe().c_str(), b.describe().c_str());
            }
        }
    }
}

std::vector<core::FaultSpec>
ScenarioSpec::faultSpecs() const
{
    std::vector<core::FaultSpec> faults;
    for (const PhaseSpec &phase : phases) {
        if (phase.kind == PhaseKind::Fault)
            faults.push_back(phase.fault);
    }
    return faults;
}

uint64_t
ScenarioSpec::lastEventTick() const
{
    uint64_t last = 0;
    for (const PhaseSpec &phase : phases) {
        if (phase.kind == PhaseKind::Fault)
            continue;
        last = std::max(last, phase.startTick + phase.lengthTicks);
    }
    return last;
}

std::string
ScenarioSpec::describe() const
{
    std::string out;
    for (const PhaseSpec &phase : phases) {
        if (!out.empty())
            out += ",";
        out += phase.describe();
    }
    return out;
}

ScenarioEngine::ScenarioEngine(
    service::EntropyService &service,
    service::MultiChannelRefillScheduler &scheduler,
    ScenarioSpec spec, core::ThermalGovernor *thermal,
    ScenarioEngineConfig cfg)
    : service_(service), scheduler_(scheduler),
      spec_(std::move(spec)), thermal_(thermal), cfg_(std::move(cfg))
{
    spec_.validate(scheduler_.channels(), service_.backendCount());
    bool has_drift = false;
    for (const PhaseSpec &phase : spec_.phases)
        has_drift |= phase.kind == PhaseKind::ThermalDrift;
    if (has_drift && !thermal_)
        fatal("campaign has drift phases but no thermal governor");
    if (has_drift && cfg_.thermalBackend >= service_.backendCount())
        fatal("thermal backend %zu of %zu", cfg_.thermalBackend,
              service_.backendCount());
}

void
ScenarioEngine::beginTick(uint64_t tick)
{
    QUAC_ASSERT(tick == nextTick_,
                "campaign ticks must be contiguous: got %llu, "
                "expected %llu",
                static_cast<unsigned long long>(tick),
                static_cast<unsigned long long>(nextTick_));
    ++nextTick_;

    for (const PhaseSpec &phase : spec_.phases) {
        switch (phase.kind) {
        case PhaseKind::ChannelFail:
            if (tick == phase.startTick) {
                scheduler_.failChannel(phase.channel);
                ++counters_.channelFailures;
            } else if (tick ==
                       phase.startTick + phase.lengthTicks) {
                scheduler_.recoverChannel(phase.channel);
                ++counters_.channelRecoveries;
            }
            break;
        case PhaseKind::ThermalDrift:
            if (tick >= phase.startTick &&
                tick < phase.startTick + phase.lengthTicks) {
                // Linear ramp hitting toC exactly on the last tick.
                uint64_t i = tick - phase.startTick;
                double frac =
                    phase.lengthTicks > 1
                        ? static_cast<double>(i) /
                              static_cast<double>(phase.lengthTicks -
                                                  1)
                        : 1.0;
                double temp =
                    phase.fromC + (phase.toC - phase.fromC) * frac;
                // The band switch runs under the backend lock; a
                // switch flushes the spans buffered across it as
                // suspect (the generator keeps serving — the next
                // fill simply runs under the new column sets).
                bool switched = false;
                size_t dropped = service_.retuneBackend(
                    cfg_.thermalBackend, [&]() {
                        switched =
                            thermal_->setTemperature(temp);
                        return switched;
                    });
                if (switched) {
                    ++counters_.bandSwitches;
                    counters_.suspectBytesDropped += dropped;
                }
            }
            break;
        case PhaseKind::FlashCrowd:
            if (tick >= phase.startTick &&
                tick < phase.startTick + phase.lengthTicks) {
                // Even spread, remainder on the earliest ticks.
                uint64_t i = tick - phase.startTick;
                uint64_t per = phase.clients / phase.lengthTicks;
                uint64_t extra = phase.clients % phase.lengthTicks;
                uint64_t due = per + (i < extra ? 1 : 0);
                for (uint64_t k = 0; k < due; ++k) {
                    std::string name =
                        cfg_.crowdPrefix + "-" +
                        std::to_string(counters_.crowdAttempted);
                    ++counters_.crowdAttempted;
                    service::EntropyService::AdmissionOutcome
                        outcome = service_.admit(
                            name, service::Priority::Bulk);
                    switch (outcome.decision) {
                    case service::AdmissionDecision::Admitted:
                        crowd_.push_back(
                            {*outcome.client, phase.requestBytes});
                        ++counters_.crowdAdmitted;
                        break;
                    case service::AdmissionDecision::Queued:
                        // Remember the issuing phase's request size
                        // so the client is adopted with it when the
                        // queue releases the connect.
                        queuedBytes_[name] = phase.requestBytes;
                        ++counters_.crowdQueued;
                        break;
                    case service::AdmissionDecision::Denied:
                        ++counters_.crowdDenied;
                        break;
                    }
                }
            }
            break;
        case PhaseKind::Fault:
            break; // armed at build time, byte-addressed
        }
    }

    // Adopt clients the admission queue released (the engine is the
    // campaign's only bulk-connect source, so every queued connect
    // is a crowd client).
    for (service::EntropyService::Client &client :
         service_.admissionTick()) {
        size_t bytes = 0;
        auto queued = queuedBytes_.find(client.name());
        if (queued != queuedBytes_.end()) {
            bytes = queued->second;
            queuedBytes_.erase(queued);
        }
        crowd_.push_back({client, bytes});
        ++counters_.crowdAdmitted;
    }
}

} // namespace quac::scenario

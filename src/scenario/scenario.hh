/**
 * @file
 * Deterministic failure-scenario engine for the entropy service.
 *
 * The stack models a healthy steady state well; a production
 * QUAC-TRNG deployment also sees whole-channel outages, temperature
 * drift moving the entropy operating point mid-run (paper Section 8),
 * and flash crowds of connects (DR-STRaNGe's demand bursts). This
 * module composes those failure shapes into timed campaigns against
 * a *running* EntropyService + MultiChannelRefillScheduler pair:
 *
 *  - chfail:<channel>:<start>:<len>   — the channel fails at tick
 *    `start` (shards re-place onto servable channels) and recovers
 *    at tick `start+len` (displaced shards return home).
 *  - drift:<start>:<len>:<fromC>:<toC> — the module temperature
 *    ramps linearly across the window; each TemperatureTable band
 *    edge crossed switches the generator's column sets online
 *    (core::ThermalGovernor) and flushes the suspect spans buffered
 *    across the switch (EntropyService::retuneBackend).
 *  - crowd:<start>:<len>:<clients>[:<bytes>] — `clients` bulk
 *    connects spread evenly over the window, pushed through the
 *    service's SLO-aware admission gate (EntropyService::admit);
 *    queue-admitted clients are adopted each tick.
 *  - fault:<bank>:<mode>:<startByte>:<lenBytes>[:<param>] — a
 *    core::FaultSpec carried for the study harness, which wraps the
 *    bank in a FaultInjectedTrng before the service is built. The
 *    fault window is byte-addressed on the bank's stream (the PR 6
 *    machinery), so the engine itself does nothing at run time; the
 *    spec travels with the campaign so one string describes the
 *    whole composed scenario, and validation still applies.
 *
 * Everything is deterministic: phases are tick- or byte-addressed
 * with no randomness, so a campaign replays exactly — which is what
 * lets the studies assert byte-exact healthy replay with the engine
 * attached vs detached. Specs are fatal-parsed like core::FaultSpec:
 * unknown kinds, zero-length windows, out-of-range targets and
 * overlapping same-target phases are rejected at startup rather
 * than silently running a weaker campaign.
 */

#ifndef QUAC_SCENARIO_SCENARIO_HH
#define QUAC_SCENARIO_SCENARIO_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/fault_injection.hh"
#include "core/thermal_governor.hh"
#include "service/entropy_service.hh"
#include "service/refill_scheduler.hh"

namespace quac::scenario
{

/** Campaign phase classes. */
enum class PhaseKind : uint8_t
{
    /** Channel outage + recovery (tick-addressed). */
    ChannelFail = 0,
    /** Linear temperature ramp (tick-addressed). */
    ThermalDrift = 1,
    /** Bulk-connect burst through admission control. */
    FlashCrowd = 2,
    /** Backend fault window (byte-addressed, build-time armed). */
    Fault = 3,
};

/** Display name ("chfail", "drift", "crowd", "fault"). */
const char *phaseKindName(PhaseKind kind);

/** One timed campaign phase. */
struct PhaseSpec
{
    PhaseKind kind = PhaseKind::ChannelFail;
    /** First tick of the phase (tick-addressed kinds). */
    uint64_t startTick = 0;
    /** Window length in ticks (> 0; recovery/ramp end at
     * startTick + lengthTicks). */
    uint64_t lengthTicks = 0;

    /** ChannelFail: the channel to take down. */
    size_t channel = 0;

    /** ThermalDrift: ramp endpoints in Celsius. */
    double fromC = 50.0;
    double toC = 50.0;

    /** FlashCrowd: connects spread across the window, and the
     * request size the study drives them with. */
    uint64_t clients = 0;
    size_t requestBytes = 1024;

    /** Fault: the byte-addressed backend fault. */
    core::FaultSpec fault;

    /**
     * Parse one phase in the syntax above. fatal() on unknown kind,
     * malformed fields, or a zero-length window — a mistyped
     * campaign must never run silently weaker.
     */
    static PhaseSpec parse(const std::string &text);

    /** The phase in parse() syntax (logs, JSON). */
    std::string describe() const;
};

/** A full campaign: phases plus cross-phase validation. */
struct ScenarioSpec
{
    std::vector<PhaseSpec> phases;

    /** Parse a comma-separated phase list (whitespace around commas
     * tolerated). fatal() on any malformed phase; an empty string
     * parses to an empty campaign. */
    static ScenarioSpec parse(const std::string &text);

    /**
     * Cross-phase validation against a concrete deployment: channel
     * and bank targets in range, and no two phases of the same kind
     * overlapping on the same target (two outages of one channel,
     * two drifts of the one module, two concurrent crowds, two
     * fault windows on one bank). fatal() with the offending pair —
     * mirrors FaultSpec's reject-at-startup contract.
     */
    void validate(size_t channels, size_t banks) const;

    /** The fault phases' specs, for arming FaultInjectedTrng
     * wrappers before the service is built. */
    std::vector<core::FaultSpec> faultSpecs() const;

    /** Last tick at which any tick-addressed phase still acts
     * (recovery edges included); 0 for fault-only campaigns. */
    uint64_t lastEventTick() const;

    /** The campaign in parse() syntax. */
    std::string describe() const;
};

/** Engine knobs. */
struct ScenarioEngineConfig
{
    /** Backend index the thermal governor's generator occupies
     * (drift phases retune/flush this backend). */
    size_t thermalBackend = 0;
    /** Name prefix of flash-crowd clients. */
    std::string crowdPrefix = "crowd";
};

/**
 * The campaign driver. The owner calls beginTick(t) for t = 0, 1,
 * ... *before* scheduler.tick() each tick; the engine applies every
 * phase edge falling on t (fail/recover a channel, step the
 * temperature ramp, issue crowd connects) and collects clients the
 * admission queue released. Deterministic: same spec + same tick
 * sequence => same actions.
 */
class ScenarioEngine
{
  public:
    /** Campaign effect counters. */
    struct Counters
    {
        uint64_t channelFailures = 0;
        uint64_t channelRecoveries = 0;
        /** TemperatureTable band switches performed by drift. */
        uint64_t bandSwitches = 0;
        /** Suspect bytes flushed across band switches. */
        uint64_t suspectBytesDropped = 0;
        uint64_t crowdAttempted = 0;
        /** Admitted immediately or from the queue. */
        uint64_t crowdAdmitted = 0;
        uint64_t crowdQueued = 0;
        uint64_t crowdDenied = 0;
    };

    /**
     * Validates @p spec against the deployment (fatal on mismatch).
     * @param thermal required iff the campaign has drift phases; its
     *        generator must be the service backend named by
     *        cfg.thermalBackend.
     */
    ScenarioEngine(service::EntropyService &service,
                   service::MultiChannelRefillScheduler &scheduler,
                   ScenarioSpec spec,
                   core::ThermalGovernor *thermal = nullptr,
                   ScenarioEngineConfig cfg = {});

    /** Apply phase edges for @p tick; call before scheduler.tick().
     * Ticks must be issued in increasing order without gaps. */
    void beginTick(uint64_t tick);

    const Counters &counters() const { return counters_; }
    const ScenarioSpec &spec() const { return spec_; }

    /**
     * One admitted flash-crowd client, tagged with the request size
     * of the phase that issued its connect — overlapping campaigns
     * can run a small-request crowd and a large-request crowd
     * side by side, and the study loop drives each client with its
     * own phase's size instead of one size for everyone.
     */
    struct CrowdClient
    {
        service::EntropyService::Client client;
        size_t requestBytes = 0;
    };

    /**
     * Flash-crowd clients admitted so far (burst admissions plus
     * clients the admission queue released), each carrying its
     * phase's request size. The study loop drives their requests;
     * the engine only owns the handles.
     */
    const std::vector<CrowdClient> &crowdClients() const
    {
        return crowd_;
    }

  private:
    service::EntropyService &service_;
    service::MultiChannelRefillScheduler &scheduler_;
    ScenarioSpec spec_;
    core::ThermalGovernor *thermal_;
    ScenarioEngineConfig cfg_;
    Counters counters_;
    std::vector<CrowdClient> crowd_;
    /** Request size of each connect parked in the admission queue,
     * by client name, so a queue-released client is adopted with
     * its issuing phase's size. */
    std::unordered_map<std::string, size_t> queuedBytes_;
    uint64_t nextTick_ = 0;
};

} // namespace quac::scenario

#endif // QUAC_SCENARIO_SCENARIO_HH

/**
 * @file
 * SHA-256 whitening of entropy blocks (paper Section 5.2, step 4):
 * each block of raw sense-amplifier data carrying >= 256 bits of
 * Shannon entropy is hashed down to a 256-bit random number.
 */

#ifndef QUAC_POSTPROCESS_WHITENING_HH
#define QUAC_POSTPROCESS_WHITENING_HH

#include <cstdint>
#include <vector>

#include "common/bitstream.hh"

namespace quac::postprocess
{

/**
 * Hash one raw entropy block into 256 output bits.
 * @param raw raw bits read from the sense amplifiers.
 */
Bitstream whitenBlock(const Bitstream &raw);

/** Hash raw bytes into 256 output bits (byte-granular fast path). */
Bitstream whitenBlock(const std::vector<uint8_t> &raw);

/**
 * Hash a sequence of entropy blocks and concatenate the 256-bit
 * outputs.
 */
Bitstream whitenBlocks(const std::vector<Bitstream> &blocks);

} // namespace quac::postprocess

#endif // QUAC_POSTPROCESS_WHITENING_HH

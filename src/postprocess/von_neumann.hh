/**
 * @file
 * Von Neumann corrector (paper Section 6.2): unbiases a Bernoulli
 * bitstream by mapping bit pairs 01 -> 1, 10 -> 0 and discarding
 * 00/11 pairs.
 */

#ifndef QUAC_POSTPROCESS_VON_NEUMANN_HH
#define QUAC_POSTPROCESS_VON_NEUMANN_HH

#include "common/bitstream.hh"

namespace quac::postprocess
{

/**
 * Apply the Von Neumann corrector to a bitstream.
 *
 * Note the paper's convention (Section 6.2): a 0 -> 1 transition
 * emits logic-1 and a 1 -> 0 transition emits logic-0 (e.g. "0010"
 * becomes "0"... the first pair "00" is dropped, the second pair
 * "10" emits 0).
 */
Bitstream vonNeumann(const Bitstream &input);

/**
 * Expected output/input length ratio for an iid input with
 * P(1) = p: p(1-p) output bits per input bit.
 */
double vonNeumannYield(double p);

} // namespace quac::postprocess

#endif // QUAC_POSTPROCESS_VON_NEUMANN_HH

#include "postprocess/whitening.hh"

#include "crypto/sha256.hh"

namespace quac::postprocess
{

Bitstream
whitenBlock(const Bitstream &raw)
{
    return whitenBlock(raw.toBytes());
}

Bitstream
whitenBlock(const std::vector<uint8_t> &raw)
{
    Sha256::Digest digest = Sha256::hash(raw);
    Bitstream out;
    for (uint8_t byte : digest)
        out.appendWord(byte, 8);
    return out;
}

Bitstream
whitenBlocks(const std::vector<Bitstream> &blocks)
{
    Bitstream out;
    for (const Bitstream &block : blocks)
        out.append(whitenBlock(block));
    return out;
}

} // namespace quac::postprocess

#include "postprocess/von_neumann.hh"

namespace quac::postprocess
{

Bitstream
vonNeumann(const Bitstream &input)
{
    Bitstream output;
    size_t pairs = input.size() / 2;
    for (size_t i = 0; i < pairs; ++i) {
        bool first = input[2 * i];
        bool second = input[2 * i + 1];
        if (first == second)
            continue;
        // 01 -> 1, 10 -> 0 (paper Section 6.2).
        output.append(!first && second);
    }
    return output;
}

double
vonNeumannYield(double p)
{
    if (p < 0.0 || p > 1.0)
        return 0.0;
    return p * (1.0 - p);
}

} // namespace quac::postprocess

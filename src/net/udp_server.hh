/**
 * @file
 * Single-threaded epoll UDP front end serving the sharded
 * EntropyService over the wire protocol in net/wire.hh.
 *
 * Modelled on janmojzis/pok's single-threaded poll loop: one
 * non-blocking socket, one event loop, no locks on the hot path. I/O
 * is batched — up to cfg.batchMessages datagrams per recvmmsg /
 * sendmmsg call, so the syscall cost amortizes across the batch (the
 * 1-vs-16-vs-64 sweep in BENCH_net.json quantifies the win) — and
 * response payloads are filled by EntropyService::Client::serveInto
 * straight into the outgoing datagram buffer: buffered entropy is
 * claimed off the lock-free shard ring directly into the packet, no
 * intermediate copy.
 *
 * Request handling per datagram:
 *   1. parse (reject malformed/truncated/oversized with zero
 *      allocation and zero service-side effect — no response:
 *      garbage gets nothing),
 *   2. resolve the wire client through the bounded LRU
 *      service::ClientTable (first contact admits through the
 *      service's SLO admission gate),
 *   3. nonce check (replays answered DENY_REPLAY, never served),
 *   4. pacing (per-client token bucket, then the global bytes/s
 *      cap; a rejected global charge refunds the per-client take),
 *   5. serve and respond.
 * Every well-formed request gets exactly one response; overload is
 * an explicit DENY status, never a silent drop. Responses that hit
 * a full socket buffer are retried (poll on writability), not
 * dropped.
 *
 * The loop is single-threaded by design. Only stop() may be called
 * from another thread (or a signal handler — it is one write() to
 * an eventfd); stats() is safe once the loop has returned or
 * between poll() steps.
 */

#ifndef QUAC_NET_UDP_SERVER_HH
#define QUAC_NET_UDP_SERVER_HH

#include <netinet/in.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/token_bucket.hh"
#include "net/wire.hh"
#include "service/client_table.hh"
#include "service/entropy_service.hh"

namespace quac::net
{

/** Upper bound on cfg.batchMessages (mmsghdr array size). */
constexpr unsigned kMaxBatchMessages = 64;

/** Server parameters. */
struct UdpServerConfig
{
    /** IPv4 address to bind. */
    std::string bindAddress = "127.0.0.1";
    /** UDP port; 0 binds an ephemeral port (see UdpServer::port). */
    uint16_t port = 0;
    /** Datagrams per recvmmsg/sendmmsg syscall (1..64). */
    unsigned batchMessages = 16;
    /** Per-request payload cap (<= wire::kMaxPayloadBytes). */
    size_t maxPayloadBytes = kMaxPayloadBytes;
    /** Wire-client table: capacity + per-client pacing. */
    service::ClientTableConfig table;
    /** Global serve-rate cap in payload bytes/s (0 = uncapped). */
    double globalBytesPerSec = 0.0;
    /** Global bucket depth in bytes (0 = one second's rate). */
    double globalBurstBytes = 0.0;
    /**
     * Top shards up (budgeted, most-drained-first) and drive the
     * admission queue whenever the loop goes idle — the
     * single-threaded stand-in for the controller's continuous
     * idle-bandwidth refill. Off, refill is the owner's problem
     * (startAutoRefill, or a deterministic test driving refills by
     * hand).
     */
    bool idleRefill = true;
    /** Refill budget per idle wakeup in bytes. */
    size_t idleRefillBudgetBytes = 64 * 1024;
    /** Idle wakeup period in ms (epoll timeout when idleRefill). */
    int idleTimeoutMs = 2;
    /** SO_RCVBUF / SO_SNDBUF request (0 = kernel default). */
    int socketBufferBytes = 1 << 21;
};

/** Counters; single-threaded, read when the loop is parked. */
struct UdpServerStats
{
    uint64_t datagramsReceived = 0;
    /** Rejected before any service contact, by ParseError. */
    std::array<uint64_t, kParseErrorCount> malformed{};
    uint64_t wellFormed = 0;
    /** Responses by Status. */
    std::array<uint64_t, kStatusCount> responses{};
    uint64_t responsesSent = 0;
    uint64_t payloadBytesServed = 0;
    uint64_t recvCalls = 0;
    uint64_t sendCalls = 0;
    /** sendmmsg blocked on a full buffer and was retried. */
    uint64_t sendRetries = 0;
    /** Hard send errors (response unsendable and skipped). */
    uint64_t sendErrors = 0;
    uint64_t idleWakeups = 0;
    uint64_t idleRefillBytes = 0;

    uint64_t malformedTotal() const
    {
        uint64_t total = 0;
        for (uint64_t m : malformed)
            total += m;
        return total;
    }
    uint64_t deniesTotal() const
    {
        uint64_t total = 0;
        for (size_t s = 0; s < kStatusCount; ++s) {
            if (isDeny(static_cast<Status>(s)))
                total += responses[s];
        }
        return total;
    }
};

/** The epoll front end. Construction binds; run()/poll() serve. */
class UdpServer
{
  public:
    /**
     * Create the socket, bind it, and set up epoll. Fatal on any
     * socket/bind failure (a server that cannot bind must not look
     * half-started). @p service must outlive the server.
     */
    UdpServer(service::EntropyService &service, UdpServerConfig cfg);

    UdpServer(const UdpServer &) = delete;
    UdpServer &operator=(const UdpServer &) = delete;

    ~UdpServer();

    /** The bound UDP port (resolves cfg.port == 0). */
    uint16_t port() const { return port_; }

    /**
     * Serve until stop(). Blocks the calling thread; the loop
     * alternates epoll_wait, batched serve rounds, and (when idle)
     * refill/admission ticks.
     */
    void run();

    /**
     * One bounded loop step for callers that own the cadence
     * (tests, in-process harnesses): wait up to @p timeout_ms for
     * readiness, serve every ready batch, run the idle tick on
     * timeout. Returns datagrams processed.
     */
    size_t poll(int timeout_ms);

    /**
     * Make run()/poll() return promptly. Async-signal-safe and
     * callable from any thread (one write to an eventfd).
     */
    void stop();

    /** True after stop(); reset by the next run()/poll(). */
    bool stopRequested() const { return stopRequested_; }

    const UdpServerStats &stats() const { return stats_; }
    const service::ClientTable &clientTable() const { return table_; }

  private:
    /** Drain the socket: recvmmsg+serve until EAGAIN. */
    size_t serveReady();
    /** Serve one received batch; returns responses queued. */
    unsigned processBatch(unsigned count, uint64_t now_ns);
    /** Handle rx slot @p i; encode into tx slot @p slot. Returns
     * true when a response was produced. */
    bool handleDatagram(unsigned i, unsigned slot, uint64_t now_ns);
    /** Send @p count queued responses; retries on EAGAIN. */
    void flushSend(unsigned count);
    /** Idle work: budgeted refill + admission pump. */
    void idleTick();

    service::EntropyService &service_;
    UdpServerConfig cfg_;
    service::ClientTable table_;
    TokenBucket global_;

    int fd_ = -1;
    int epollFd_ = -1;
    int wakeFd_ = -1;
    uint16_t port_ = 0;
    bool stopRequested_ = false;

    /** RX: header size + slack so an oversized datagram is seen as
     * oversized instead of silently truncated to a valid size. */
    static constexpr size_t kRxSlotBytes = kRequestBytes + 16;
    std::vector<uint8_t> rxBuffers_;
    std::vector<sockaddr_in> rxAddrs_;
    std::vector<iovec> rxIovecs_;
    std::vector<mmsghdr> rxMsgs_;

    /** TX: response header + payload, filled in place. */
    size_t txSlotBytes_ = 0;
    std::vector<uint8_t> txBuffers_;
    std::vector<sockaddr_in> txAddrs_;
    std::vector<iovec> txIovecs_;
    std::vector<mmsghdr> txMsgs_;

    UdpServerStats stats_;
};

} // namespace quac::net

#endif // QUAC_NET_UDP_SERVER_HH

#include "net/loadgen.hh"

#include <arpa/inet.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>

#include "common/error.hh"
#include "common/rng.hh"

namespace quac::net
{

namespace
{

uint64_t
monotonicNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

int
openConnectedSocket(const std::string &address, uint16_t port,
                    bool nonblock)
{
    int fd = ::socket(AF_INET,
                      SOCK_DGRAM | (nonblock ? SOCK_NONBLOCK : 0), 0);
    if (fd < 0)
        fatal("socket: %s", std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1)
        fatal("bad server address '%s'", address.c_str());
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        fatal("connect %s:%u: %s", address.c_str(), port,
              std::strerror(errno));
    int sz = 1 << 21;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &sz, sizeof(sz));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sz, sizeof(sz));
    return fd;
}

/** Percentile from a sorted sample (nearest-rank). */
uint64_t
percentile(const std::vector<uint64_t> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    size_t rank = static_cast<size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

/** Key in-flight requests by (clientId, nonce). clientIds are dense
 * small integers and nonces per client stay well under 2^32 for any
 * realistic run, so the packed key is collision-free. */
uint64_t
pendingKey(uint64_t client_id, uint64_t nonce)
{
    return (client_id << 32) ^ (nonce & 0xffffffffu);
}

} // anonymous namespace

LoadGenResult
runLoadGen(const LoadGenConfig &cfg)
{
    if (cfg.clients < 1)
        fatal("loadgen needs >= 1 client");
    if (cfg.ratePerSec <= 0.0)
        fatal("loadgen rate must be > 0 (open-loop)");
    if (cfg.batchMessages < 1 || cfg.batchMessages > 64)
        fatal("loadgen batchMessages must be in [1, 64]");

    int fd = openConnectedSocket(cfg.serverAddress, cfg.port, true);
    Xoshiro256pp rng(cfg.seed);

    // Per-client nonce counters. 100k simulated clients is 800 KiB —
    // cheap enough to keep flat and O(1).
    std::vector<uint64_t> nonces(cfg.clients, 0);
    std::unordered_map<uint64_t, uint64_t> pending;
    pending.reserve(4096);
    std::vector<uint64_t> latencies;
    latencies.reserve(cfg.requests);

    double mix_total =
        cfg.priorityMix[0] + cfg.priorityMix[1] + cfg.priorityMix[2];
    if (mix_total <= 0.0)
        fatal("priorityMix must have positive mass");
    double mix0 = cfg.priorityMix[0] / mix_total;
    double mix1 = mix0 + cfg.priorityMix[1] / mix_total;

    unsigned batch = cfg.batchMessages;
    size_t rx_slot = kResponseHeaderBytes + kMaxPayloadBytes;
    std::vector<uint8_t> rx_buffers(batch * rx_slot);
    std::vector<iovec> rx_iovecs(batch);
    std::vector<mmsghdr> rx_msgs(batch);
    std::vector<uint8_t> tx_buffers(batch * kRequestBytes);
    std::vector<iovec> tx_iovecs(batch);
    std::vector<mmsghdr> tx_msgs(batch);
    for (unsigned i = 0; i < batch; ++i) {
        rx_iovecs[i] = {rx_buffers.data() + i * rx_slot, rx_slot};
        std::memset(&rx_msgs[i], 0, sizeof(rx_msgs[i]));
        rx_msgs[i].msg_hdr.msg_iov = &rx_iovecs[i];
        rx_msgs[i].msg_hdr.msg_iovlen = 1;
        tx_iovecs[i] = {tx_buffers.data() + i * kRequestBytes,
                        kRequestBytes};
        std::memset(&tx_msgs[i], 0, sizeof(tx_msgs[i]));
        tx_msgs[i].msg_hdr.msg_iov = &tx_iovecs[i];
        tx_msgs[i].msg_hdr.msg_iovlen = 1;
    }

    LoadGenResult result;
    result.offeredRps = cfg.ratePerSec;

    auto drain = [&](uint64_t now_ns) {
        for (;;) {
            int n = ::recvmmsg(fd, rx_msgs.data(), batch,
                               MSG_DONTWAIT, nullptr);
            if (n <= 0)
                break;
            for (int i = 0; i < n; ++i) {
                Response response;
                if (parseResponse(rx_buffers.data() + i * rx_slot,
                                  rx_msgs[i].msg_len, response) !=
                    ParseError::None)
                    continue;
                auto it = pending.find(pendingKey(
                    response.clientId, response.nonce));
                if (it == pending.end()) {
                    ++result.unmatched;
                    continue;
                }
                latencies.push_back(now_ns - it->second);
                pending.erase(it);
                ++result.received;
                ++result.statusCounts[static_cast<size_t>(
                    response.status)];
                result.payloadBytesReceived += response.payloadBytes;
            }
            if (static_cast<unsigned>(n) < batch)
                break;
        }
    };

    double interval_ns = 1e9 / cfg.ratePerSec;
    uint64_t start_ns = monotonicNs();
    uint64_t sent = 0;
    uint64_t last_activity_ns = start_ns;

    while (sent < cfg.requests) {
        uint64_t now_ns = monotonicNs();
        // Open loop: everything whose scheduled arrival has passed
        // is due now, regardless of outstanding responses.
        uint64_t due = std::min<uint64_t>(
            cfg.requests,
            static_cast<uint64_t>(
                static_cast<double>(now_ns - start_ns) /
                interval_ns) +
                1);
        while (sent < due) {
            unsigned n = static_cast<unsigned>(
                std::min<uint64_t>(batch, due - sent));
            for (unsigned i = 0; i < n; ++i) {
                uint64_t slot =
                    rng.next() % cfg.clients;
                uint64_t client_id = cfg.firstClientId + slot;
                uint64_t nonce = ++nonces[slot];
                double draw = rng.uniform();
                uint8_t priority =
                    draw < mix0 ? 0 : (draw < mix1 ? 1 : 2);
                Request request;
                request.priority = priority;
                request.clientId = client_id;
                request.nonce = nonce;
                request.bytes = cfg.requestBytes;
                encodeRequest(
                    tx_buffers.data() + i * kRequestBytes, request);
                pending.emplace(pendingKey(client_id, nonce),
                                monotonicNs());
            }
            unsigned done = 0;
            while (done < n) {
                int s = ::sendmmsg(fd, tx_msgs.data() + done,
                                   n - done, 0);
                if (s < 0) {
                    if (errno == EINTR)
                        continue;
                    if (errno == EAGAIN || errno == ENOBUFS) {
                        // Loopback send buffer full: make room by
                        // consuming responses, then retry.
                        drain(monotonicNs());
                        pollfd pfd{fd, POLLOUT, 0};
                        ::poll(&pfd, 1, 10);
                        continue;
                    }
                    fatal("sendmmsg: %s", std::strerror(errno));
                }
                done += static_cast<unsigned>(s);
            }
            sent += n;
            result.sent += n;
            drain(monotonicNs());
        }
        now_ns = monotonicNs();
        drain(now_ns);
        if (!pending.empty() || sent < cfg.requests)
            last_activity_ns = now_ns;
        if (sent < cfg.requests) {
            // Sleep until the next scheduled arrival, waking early
            // for responses.
            uint64_t next_ns =
                start_ns + static_cast<uint64_t>(
                               static_cast<double>(sent) *
                               interval_ns);
            now_ns = monotonicNs();
            if (next_ns > now_ns) {
                int wait_ms = static_cast<int>(
                    (next_ns - now_ns) / 1000000u);
                pollfd pfd{fd, POLLIN, 0};
                ::poll(&pfd, 1, std::max(0, wait_ms));
            }
        }
    }

    // Drain stragglers until quiet or timeout.
    uint64_t deadline_ns =
        monotonicNs() +
        static_cast<uint64_t>(cfg.drainTimeoutMs) * 1000000u;
    while (!pending.empty()) {
        uint64_t now_ns = monotonicNs();
        if (now_ns >= deadline_ns)
            break;
        pollfd pfd{fd, POLLIN, 0};
        int r = ::poll(&pfd, 1, 10);
        now_ns = monotonicNs();
        if (r > 0) {
            drain(now_ns);
            last_activity_ns = now_ns;
        }
    }
    result.lost = pending.size();
    result.elapsedNs =
        std::max<uint64_t>(1, last_activity_ns - start_ns);
    result.achievedRps = static_cast<double>(result.received) * 1e9 /
                         static_cast<double>(result.elapsedNs);

    std::sort(latencies.begin(), latencies.end());
    result.p50Ns = percentile(latencies, 0.50);
    result.p95Ns = percentile(latencies, 0.95);
    result.p99Ns = percentile(latencies, 0.99);
    result.maxNs = latencies.empty() ? 0 : latencies.back();

    ::close(fd);
    return result;
}

SyncClient::SyncClient(const std::string &address, uint16_t port,
                       uint64_t client_id)
    : fd_(openConnectedSocket(address, port, false)),
      clientId_(client_id)
{
}

SyncClient::~SyncClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

SyncClient::Reply
SyncClient::sendRaw(const uint8_t *data, size_t len, int timeout_ms)
{
    if (::send(fd_, data, len, 0) < 0)
        fatal("send: %s", std::strerror(errno));
    Reply reply;
    uint8_t buffer[kResponseHeaderBytes + kMaxPayloadBytes];
    pollfd pfd{fd_, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0)
        return reply; // silence — the expected answer to garbage
    ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n < 0)
        return reply;
    Response response;
    if (parseResponse(buffer, static_cast<size_t>(n), response) !=
        ParseError::None)
        return reply;
    reply.received = true;
    reply.status = response.status;
    reply.payload.assign(buffer + kResponseHeaderBytes,
                         buffer + kResponseHeaderBytes +
                             response.payloadBytes);
    return reply;
}

SyncClient::Reply
SyncClient::request(uint32_t bytes, uint8_t priority, int timeout_ms)
{
    Request request;
    request.priority = priority;
    request.clientId = clientId_;
    request.nonce = ++nonce_;
    request.bytes = bytes;
    uint8_t wire[kRequestBytes];
    encodeRequest(wire, request);

    uint64_t deadline_ns =
        monotonicNs() +
        static_cast<uint64_t>(timeout_ms) * 1000000u;
    if (::send(fd_, wire, sizeof(wire), 0) < 0)
        fatal("send: %s", std::strerror(errno));
    Reply reply;
    uint8_t buffer[kResponseHeaderBytes + kMaxPayloadBytes];
    for (;;) {
        uint64_t now_ns = monotonicNs();
        if (now_ns >= deadline_ns)
            return reply;
        pollfd pfd{fd_, POLLIN, 0};
        int r = ::poll(&pfd, 1,
                       static_cast<int>(
                           (deadline_ns - now_ns) / 1000000u) +
                           1);
        if (r <= 0)
            return reply;
        ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
        if (n < 0)
            continue;
        Response response;
        if (parseResponse(buffer, static_cast<size_t>(n), response) !=
            ParseError::None)
            continue;
        if (response.clientId != clientId_ ||
            response.nonce != request.nonce)
            continue; // stale response from an earlier exchange
        reply.received = true;
        reply.status = response.status;
        reply.payload.assign(buffer + kResponseHeaderBytes,
                             buffer + kResponseHeaderBytes +
                                 response.payloadBytes);
        return reply;
    }
}

} // namespace quac::net

#include "net/udp_server.hh"

#include <arpa/inet.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/error.hh"

namespace quac::net
{

namespace
{

uint64_t
monotonicNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

service::Priority
wirePriority(uint8_t priority)
{
    switch (priority) {
    case 0: return service::Priority::Interactive;
    case 1: return service::Priority::Standard;
    default: return service::Priority::Bulk;
    }
}

} // anonymous namespace

UdpServer::UdpServer(service::EntropyService &service,
                     UdpServerConfig cfg)
    : service_(service), cfg_(std::move(cfg)),
      table_(service, cfg_.table),
      global_(cfg_.globalBytesPerSec, cfg_.globalBurstBytes)
{
    if (cfg_.batchMessages < 1 ||
        cfg_.batchMessages > kMaxBatchMessages)
        fatal("batchMessages must be in [1, %u], got %u",
              kMaxBatchMessages, cfg_.batchMessages);
    if (cfg_.maxPayloadBytes == 0 ||
        cfg_.maxPayloadBytes > kMaxPayloadBytes)
        fatal("maxPayloadBytes must be in [1, %zu], got %zu",
              kMaxPayloadBytes, cfg_.maxPayloadBytes);
    if (cfg_.idleTimeoutMs <= 0)
        fatal("idleTimeoutMs must be > 0");

    fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
    if (fd_ < 0)
        fatal("socket: %s", std::strerror(errno));
    if (cfg_.socketBufferBytes > 0) {
        // Best-effort: the kernel clamps to rmem_max/wmem_max; a
        // smaller buffer only means earlier backpressure, which the
        // explicit-DENY path already handles.
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF,
                     &cfg_.socketBufferBytes,
                     sizeof(cfg_.socketBufferBytes));
        ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF,
                     &cfg_.socketBufferBytes,
                     sizeof(cfg_.socketBufferBytes));
    }

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.port);
    if (::inet_pton(AF_INET, cfg_.bindAddress.c_str(),
                    &addr.sin_addr) != 1)
        fatal("bad bind address '%s'", cfg_.bindAddress.c_str());
    if (::bind(fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("bind %s:%u: %s", cfg_.bindAddress.c_str(),
              cfg_.port, std::strerror(errno));
    socklen_t addr_len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&addr),
                      &addr_len) != 0)
        fatal("getsockname: %s", std::strerror(errno));
    port_ = ntohs(addr.sin_port);

    wakeFd_ = ::eventfd(0, EFD_NONBLOCK);
    if (wakeFd_ < 0)
        fatal("eventfd: %s", std::strerror(errno));
    epollFd_ = ::epoll_create1(0);
    if (epollFd_ < 0)
        fatal("epoll_create1: %s", std::strerror(errno));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd_;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd_, &ev) != 0)
        fatal("epoll_ctl(socket): %s", std::strerror(errno));
    ev.data.fd = wakeFd_;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &ev) != 0)
        fatal("epoll_ctl(eventfd): %s", std::strerror(errno));

    // Fixed-size I/O state, allocated once: the serve loop itself
    // never allocates.
    unsigned batch = cfg_.batchMessages;
    rxBuffers_.resize(batch * kRxSlotBytes);
    rxAddrs_.resize(batch);
    rxIovecs_.resize(batch);
    rxMsgs_.resize(batch);
    txSlotBytes_ = kResponseHeaderBytes + cfg_.maxPayloadBytes;
    txBuffers_.resize(batch * txSlotBytes_);
    txAddrs_.resize(batch);
    txIovecs_.resize(batch);
    txMsgs_.resize(batch);
    for (unsigned i = 0; i < batch; ++i) {
        rxIovecs_[i] = {rxBuffers_.data() + i * kRxSlotBytes,
                        kRxSlotBytes};
        std::memset(&rxMsgs_[i], 0, sizeof(rxMsgs_[i]));
        rxMsgs_[i].msg_hdr.msg_name = &rxAddrs_[i];
        rxMsgs_[i].msg_hdr.msg_namelen = sizeof(rxAddrs_[i]);
        rxMsgs_[i].msg_hdr.msg_iov = &rxIovecs_[i];
        rxMsgs_[i].msg_hdr.msg_iovlen = 1;
        txIovecs_[i] = {txBuffers_.data() + i * txSlotBytes_, 0};
        std::memset(&txMsgs_[i], 0, sizeof(txMsgs_[i]));
        txMsgs_[i].msg_hdr.msg_name = &txAddrs_[i];
        txMsgs_[i].msg_hdr.msg_namelen = sizeof(txAddrs_[i]);
        txMsgs_[i].msg_hdr.msg_iov = &txIovecs_[i];
        txMsgs_[i].msg_hdr.msg_iovlen = 1;
    }
}

UdpServer::~UdpServer()
{
    if (epollFd_ >= 0)
        ::close(epollFd_);
    if (wakeFd_ >= 0)
        ::close(wakeFd_);
    if (fd_ >= 0)
        ::close(fd_);
}

void
UdpServer::stop()
{
    // One write, async-signal-safe: usable straight from a SIGINT
    // handler. The loop reads the eventfd and returns.
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wakeFd_, &one, sizeof(one));
}

bool
UdpServer::handleDatagram(unsigned i, unsigned slot, uint64_t now_ns)
{
    size_t len = rxMsgs_[i].msg_len;
    const uint8_t *data = rxBuffers_.data() + i * kRxSlotBytes;

    // Malformed traffic is classified and dropped before the client
    // table or any shard state is touched: no allocation, no
    // service-side effect, no response. A datagram the rx slot had
    // to truncate is oversized by definition.
    Request request;
    ParseError err =
        (rxMsgs_[i].msg_hdr.msg_flags & MSG_TRUNC) != 0
            ? ParseError::Oversized
            : parseRequest(data, len, request);
    if (err != ParseError::None) {
        ++stats_.malformed[static_cast<size_t>(err)];
        return false;
    }
    ++stats_.wellFormed;

    // From here on every outcome is a response: overload and
    // rejection are explicit DENY statuses, never silence.
    uint8_t *tx = txBuffers_.data() + slot * txSlotBytes_;
    uint8_t *payload = tx + kResponseHeaderBytes;
    Status status = Status::Ok;
    uint32_t payload_bytes = 0;

    if (request.bytes > cfg_.maxPayloadBytes) {
        status = Status::DenyOversized;
    } else {
        service::ClientTable::Acquire acquired = table_.acquire(
            request.clientId, wirePriority(request.priority),
            now_ns);
        switch (acquired.status) {
        case service::ClientTable::AcquireStatus::Denied:
            status = Status::DenyAdmission;
            break;
        case service::ClientTable::AcquireStatus::Queued:
            status = Status::DenyBusy;
            break;
        case service::ClientTable::AcquireStatus::Existing:
        case service::ClientTable::AcquireStatus::Created: {
            service::ClientTable::Entry &entry = *acquired.entry;
            double bytes = static_cast<double>(request.bytes);
            if (table_.checkNonce(entry, request.nonce) ==
                service::ClientTable::NonceCheck::Replay) {
                // Duplicate or reordered stale datagram: answered
                // (so nothing is silent) but never served — a
                // replayed request must not drain fresh entropy.
                status = Status::DenyReplay;
            } else if (!entry.bucket.tryTake(bytes, now_ns)) {
                status = Status::DenyThrottled;
            } else if (!global_.tryTake(bytes, now_ns)) {
                // Refund the per-client take: the client should
                // not also lose private budget to a global cap.
                entry.bucket.credit(bytes);
                status = Status::DenyGlobal;
            } else {
                // Zero-copy serve: buffered bytes are claimed off
                // the lock-free shard ring straight into the
                // response datagram.
                service::RequestResult result =
                    entry.client.serveInto(payload, request.bytes);
                payload_bytes =
                    static_cast<uint32_t>(result.bytes);
                if (result.denied)
                    status = Status::DenyService;
                else if (result.bytes < request.bytes)
                    status = Status::Partial;
                else
                    status = Status::Ok;
            }
            break;
        }
        }
    }

    encodeResponseHeader(tx, status, request.clientId, request.nonce,
                         payload_bytes);
    txIovecs_[slot].iov_len = kResponseHeaderBytes + payload_bytes;
    txAddrs_[slot] = rxAddrs_[i];
    txMsgs_[slot].msg_hdr.msg_namelen = rxMsgs_[i].msg_hdr.msg_namelen;
    ++stats_.responses[static_cast<size_t>(status)];
    stats_.payloadBytesServed += payload_bytes;
    return true;
}

void
UdpServer::flushSend(unsigned count)
{
    unsigned sent = 0;
    while (sent < count) {
        int n = ::sendmmsg(fd_, txMsgs_.data() + sent, count - sent,
                           0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == ENOBUFS) {
                // Socket buffer full: wait for writability and
                // retry. Backpressure stalls the loop (we stop
                // reading new requests until these responses are
                // out) — bounded memory, zero silent drops.
                ++stats_.sendRetries;
                pollfd pfd{fd_, POLLOUT, 0};
                ::poll(&pfd, 1, 100);
                continue;
            }
            // Hard error for this destination (e.g. an unreachable
            // route). Skip the one message so one poisoned address
            // cannot livelock the loop; the gap is counted, not
            // hidden.
            ++stats_.sendErrors;
            ++sent;
            continue;
        }
        ++stats_.sendCalls;
        stats_.responsesSent += static_cast<uint64_t>(n);
        sent += static_cast<unsigned>(n);
    }
}

unsigned
UdpServer::processBatch(unsigned count, uint64_t now_ns)
{
    unsigned queued = 0;
    for (unsigned i = 0; i < count; ++i) {
        if (handleDatagram(i, queued, now_ns))
            ++queued;
    }
    if (queued > 0)
        flushSend(queued);
    return queued;
}

size_t
UdpServer::serveReady()
{
    size_t total = 0;
    for (;;) {
        int n = ::recvmmsg(fd_, rxMsgs_.data(), cfg_.batchMessages,
                           MSG_DONTWAIT, nullptr);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break; // EAGAIN: drained
        }
        if (n == 0)
            break;
        ++stats_.recvCalls;
        stats_.datagramsReceived += static_cast<uint64_t>(n);
        processBatch(static_cast<unsigned>(n), monotonicNs());
        total += static_cast<size_t>(n);
        if (static_cast<unsigned>(n) < cfg_.batchMessages)
            break; // short batch: socket is (momentarily) drained
    }
    // Serve rounds can release queued admissions too (headroom may
    // have recovered); keep the control loop moving even when the
    // server never goes idle.
    table_.pump();
    return total;
}

void
UdpServer::idleTick()
{
    ++stats_.idleWakeups;
    if (cfg_.idleRefill) {
        stats_.idleRefillBytes +=
            service_.refillTick(cfg_.idleRefillBudgetBytes);
        service_.healthTick();
    }
    table_.pump();
}

size_t
UdpServer::poll(int timeout_ms)
{
    stopRequested_ = false;
    epoll_event events[4];
    int n = ::epoll_wait(epollFd_, events, 4, timeout_ms);
    if (n < 0) {
        if (errno != EINTR)
            fatal("epoll_wait: %s", std::strerror(errno));
        return 0;
    }
    if (n == 0) {
        idleTick();
        return 0;
    }
    size_t served = 0;
    for (int e = 0; e < n; ++e) {
        if (events[e].data.fd == wakeFd_) {
            uint64_t drained;
            while (::read(wakeFd_, &drained, sizeof(drained)) > 0) {
            }
            stopRequested_ = true;
        } else if ((events[e].events & EPOLLIN) != 0) {
            served += serveReady();
        }
    }
    return served;
}

void
UdpServer::run()
{
    stopRequested_ = false;
    while (!stopRequested_)
        poll(cfg_.idleRefill ? cfg_.idleTimeoutMs : -1);
}

} // namespace quac::net

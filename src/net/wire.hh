/**
 * @file
 * Compact UDP wire protocol for the entropy front end.
 *
 * One datagram carries one request or one response. A request is a
 * fixed 32-byte header (magic + version + priority + client id +
 * sequence nonce + requested bytes); a response echoes the client id
 * and nonce — the client matches responses to requests and detects
 * drops/reordering from nonce gaps, the keyid/nonce idiom of
 * janmojzis/pok's nk.c scaled down to an unencrypted entropy feed.
 * All integers are little-endian; reserved fields must be zero so
 * the format can grow without a version bump.
 *
 * Parsing never allocates and never touches the service: a
 * malformed, truncated, or oversized datagram is classified and
 * dropped before any client-table or shard state is consulted
 * (a garbage blast must not evict live clients or drain entropy).
 * Well-formed requests, by contract, always produce exactly one
 * response — overload is an explicit DENY status, never silence.
 */

#ifndef QUAC_NET_WIRE_HH
#define QUAC_NET_WIRE_HH

#include <cstddef>
#include <cstdint>

namespace quac::net
{

/** "QTRN" in the first four bytes of every datagram. */
constexpr uint32_t kMagic = 0x4E525451u; // LE bytes: 'Q' 'T' 'R' 'N'

/** Protocol version carried in byte 4. */
constexpr uint8_t kVersion = 1;

/** Exact request datagram size in bytes. */
constexpr size_t kRequestBytes = 32;

/** Response header size; entropy payload follows immediately. */
constexpr size_t kResponseHeaderBytes = 32;

/**
 * Hard per-request payload cap: header + payload stays under the
 * 1280-byte IPv6 minimum MTU, so a response datagram never
 * fragments on any sane path.
 */
constexpr size_t kMaxPayloadBytes = 1184;

/** Response status codes (byte 5 of a response). */
enum class Status : uint8_t
{
    /** Full requested payload follows. */
    Ok = 0,
    /** Bulk backpressure: a shorter-than-requested payload follows
     * (possibly empty); retry after the next refill. */
    Partial = 1,
    /** Per-client token bucket empty: paced, retry later. */
    DenyThrottled = 2,
    /** Global bytes/s cap exhausted: retry later. */
    DenyGlobal = 3,
    /** Admission gate rejected the connect outright (retry queue
     * full). */
    DenyAdmission = 4,
    /** Connect parked in the admission retry queue: not yet
     * admitted, retry later. */
    DenyBusy = 5,
    /** Requested bytes exceed the server's payload cap. */
    DenyOversized = 6,
    /** Stale or duplicate sequence nonce (replay). */
    DenyReplay = 7,
    /** The service itself denied the request (no servable bank, or
     * a backend failure surfaced mid-fill). */
    DenyService = 8,
};

/** Number of distinct Status values (stat-array size). */
constexpr size_t kStatusCount = 9;

/** Display name ("ok", "partial", "deny-throttled", ...). */
const char *statusName(Status status);

/** True for every Deny* status (accounting: ok+partial+denies). */
bool isDeny(Status status);

/** Why a datagram failed to parse. */
enum class ParseError : uint8_t
{
    None = 0,
    /** Datagram shorter than the fixed header. */
    Truncated = 1,
    /** Datagram longer than the fixed header (requests) or than the
     * header + declared payload (responses). */
    Oversized = 2,
    BadMagic = 3,
    BadVersion = 4,
    /** Priority byte outside {0, 1, 2}. */
    BadPriority = 5,
    /** Reserved fields not zero. */
    BadReserved = 6,
};

/** Number of distinct ParseError values (stat-array size). */
constexpr size_t kParseErrorCount = 7;

/** Display name ("truncated", "bad-magic", ...). */
const char *parseErrorName(ParseError error);

/** A decoded request. */
struct Request
{
    /** Wire priority: 0 interactive, 1 standard, 2 bulk. */
    uint8_t priority = 1;
    /** Caller-chosen 64-bit client identity. */
    uint64_t clientId = 0;
    /** Per-client strictly increasing sequence nonce. */
    uint64_t nonce = 0;
    /** Requested entropy bytes. */
    uint32_t bytes = 0;
};

/** A decoded response header. */
struct Response
{
    Status status = Status::Ok;
    uint64_t clientId = 0;
    /** Echo of the request nonce. */
    uint64_t nonce = 0;
    /** Payload bytes following the header. */
    uint32_t payloadBytes = 0;
};

/**
 * Validate and decode a request datagram. @p len is the datagram
 * size as received (a truncating read must be detected by the
 * caller and reported as Oversized). No allocation; @p out is only
 * written when the result is ParseError::None.
 */
ParseError parseRequest(const uint8_t *data, size_t len,
                        Request &out);

/** Encode a request into @p out (>= kRequestBytes). Returns
 * kRequestBytes. */
size_t encodeRequest(uint8_t *out, const Request &request);

/**
 * Encode a response *header* into @p out (>= kResponseHeaderBytes).
 * The payload is written separately — normally it is already in
 * place, served straight into out + kResponseHeaderBytes by the
 * shard ring's zero-copy claim. Returns kResponseHeaderBytes.
 */
size_t encodeResponseHeader(uint8_t *out, Status status,
                            uint64_t client_id, uint64_t nonce,
                            uint32_t payload_bytes);

/**
 * Validate and decode a response datagram (client side). @p len
 * must equal kResponseHeaderBytes + payloadBytes exactly.
 */
ParseError parseResponse(const uint8_t *data, size_t len,
                         Response &out);

} // namespace quac::net

#endif // QUAC_NET_WIRE_HH

#include "net/wire.hh"

#include <cstring>

namespace quac::net
{

namespace
{

void
pack16(uint8_t *out, uint16_t v)
{
    out[0] = static_cast<uint8_t>(v);
    out[1] = static_cast<uint8_t>(v >> 8);
}

void
pack32(uint8_t *out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<uint8_t>(v >> (8 * i));
}

void
pack64(uint8_t *out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint16_t
unpack16(const uint8_t *in)
{
    return static_cast<uint16_t>(in[0] | (in[1] << 8));
}

uint32_t
unpack32(const uint8_t *in)
{
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | in[i];
    return v;
}

uint64_t
unpack64(const uint8_t *in)
{
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | in[i];
    return v;
}

/**
 * Shared 32-byte header layout:
 *   0  u32 magic
 *   4  u8  version
 *   5  u8  priority (request) / status (response)
 *   6  u16 reserved = 0
 *   8  u64 client id
 *  16  u64 nonce
 *  24  u32 requested bytes (request) / payload bytes (response)
 *  28  u32 reserved = 0
 */
ParseError
checkHeader(const uint8_t *data, size_t len)
{
    if (len < kRequestBytes)
        return ParseError::Truncated;
    if (unpack32(data + 0) != kMagic)
        return ParseError::BadMagic;
    if (data[4] != kVersion)
        return ParseError::BadVersion;
    if (unpack16(data + 6) != 0 || unpack32(data + 28) != 0)
        return ParseError::BadReserved;
    return ParseError::None;
}

void
packHeader(uint8_t *out, uint8_t code, uint64_t client_id,
           uint64_t nonce, uint32_t bytes)
{
    pack32(out + 0, kMagic);
    out[4] = kVersion;
    out[5] = code;
    pack16(out + 6, 0);
    pack64(out + 8, client_id);
    pack64(out + 16, nonce);
    pack32(out + 24, bytes);
    pack32(out + 28, 0);
}

} // anonymous namespace

const char *
statusName(Status status)
{
    switch (status) {
    case Status::Ok: return "ok";
    case Status::Partial: return "partial";
    case Status::DenyThrottled: return "deny-throttled";
    case Status::DenyGlobal: return "deny-global";
    case Status::DenyAdmission: return "deny-admission";
    case Status::DenyBusy: return "deny-busy";
    case Status::DenyOversized: return "deny-oversized";
    case Status::DenyReplay: return "deny-replay";
    case Status::DenyService: return "deny-service";
    }
    return "unknown";
}

bool
isDeny(Status status)
{
    return status != Status::Ok && status != Status::Partial;
}

const char *
parseErrorName(ParseError error)
{
    switch (error) {
    case ParseError::None: return "none";
    case ParseError::Truncated: return "truncated";
    case ParseError::Oversized: return "oversized";
    case ParseError::BadMagic: return "bad-magic";
    case ParseError::BadVersion: return "bad-version";
    case ParseError::BadPriority: return "bad-priority";
    case ParseError::BadReserved: return "bad-reserved";
    }
    return "unknown";
}

ParseError
parseRequest(const uint8_t *data, size_t len, Request &out)
{
    // Size first: a datagram of the wrong size is classified by its
    // size alone, so a truncated copy of a valid request still
    // reads as Truncated, not as whatever its magic happens to say.
    if (len < kRequestBytes)
        return ParseError::Truncated;
    if (len > kRequestBytes)
        return ParseError::Oversized;
    ParseError err = checkHeader(data, len);
    if (err != ParseError::None)
        return err;
    if (data[5] > 2)
        return ParseError::BadPriority;
    out.priority = data[5];
    out.clientId = unpack64(data + 8);
    out.nonce = unpack64(data + 16);
    out.bytes = unpack32(data + 24);
    return ParseError::None;
}

size_t
encodeRequest(uint8_t *out, const Request &request)
{
    packHeader(out, request.priority, request.clientId,
               request.nonce, request.bytes);
    return kRequestBytes;
}

size_t
encodeResponseHeader(uint8_t *out, Status status, uint64_t client_id,
                     uint64_t nonce, uint32_t payload_bytes)
{
    packHeader(out, static_cast<uint8_t>(status), client_id, nonce,
               payload_bytes);
    return kResponseHeaderBytes;
}

ParseError
parseResponse(const uint8_t *data, size_t len, Response &out)
{
    ParseError err = checkHeader(data, len);
    if (err != ParseError::None)
        return err;
    if (data[5] >= kStatusCount)
        return ParseError::BadPriority; // status out of range
    uint32_t payload = unpack32(data + 24);
    if (len != kResponseHeaderBytes + payload) {
        return len < kResponseHeaderBytes + payload
                   ? ParseError::Truncated
                   : ParseError::Oversized;
    }
    out.status = static_cast<Status>(data[5]);
    out.clientId = unpack64(data + 8);
    out.nonce = unpack64(data + 16);
    out.payloadBytes = payload;
    return ParseError::None;
}

} // namespace quac::net

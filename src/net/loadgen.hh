/**
 * @file
 * Open-loop UDP load generator for the entropy wire protocol.
 *
 * Simulates N wire clients from one socket and one thread: request
 * arrivals are scheduled on a fixed-rate open-loop clock (arrival
 * times do not wait for responses, so server-side queueing shows up
 * as latency instead of silently throttling the offered load), each
 * arrival is assigned to a uniformly random simulated client with
 * that client's next strictly-increasing nonce, and priorities are
 * drawn from a configurable mix. Sends and receives are batched with
 * sendmmsg/recvmmsg just like the server side.
 *
 * Every in-flight request is tracked by (clientId, nonce) until its
 * response echoes the pair back; the run result reports measured
 * requests/s, per-status response counts, and p50/p95/p99/max
 * wall-clock latency. Requests still unanswered after the drain
 * timeout are counted as lost — the loopback smoke test asserts that
 * number is zero for well-formed traffic.
 *
 * SyncClient is the single-request companion: one blocking
 * request/response exchange at a time, for tests (byte-identity
 * replay vs the direct service API) and simple examples.
 */

#ifndef QUAC_NET_LOADGEN_HH
#define QUAC_NET_LOADGEN_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.hh"

namespace quac::net
{

/** Load-generator parameters. */
struct LoadGenConfig
{
    /** Server IPv4 address. */
    std::string serverAddress = "127.0.0.1";
    /** Server UDP port. */
    uint16_t port = 0;
    /** Simulated wire clients (distinct clientIds). */
    uint64_t clients = 1000;
    /** Total requests to send across all clients. */
    uint64_t requests = 10000;
    /**
     * Open-loop arrival rate in requests/s (> 0). Arrivals are
     * evenly spaced; the generator never waits for a response
     * before the next send.
     */
    double ratePerSec = 50000.0;
    /** Payload bytes requested per request. */
    uint32_t requestBytes = 64;
    /** Priority mix {interactive, standard, bulk}; normalized. */
    std::array<double, 3> priorityMix{1.0, 0.0, 0.0};
    /** Datagrams per recvmmsg/sendmmsg call. */
    unsigned batchMessages = 16;
    /** Wait for straggler responses after the last send (ms). */
    int drainTimeoutMs = 1000;
    /** PRNG seed (client choice + priority draw). */
    uint64_t seed = 1;
    /** First clientId (offset to avoid cross-run table reuse). */
    uint64_t firstClientId = 1;
};

/** One load-generator run's measurements. */
struct LoadGenResult
{
    uint64_t sent = 0;
    uint64_t received = 0;
    /** Sent but unanswered within the drain timeout. */
    uint64_t lost = 0;
    /** Responses that matched no outstanding (clientId, nonce). */
    uint64_t unmatched = 0;
    /** Responses by wire Status. */
    std::array<uint64_t, kStatusCount> statusCounts{};
    uint64_t payloadBytesReceived = 0;
    /** Wall-clock from first send to last receive. */
    uint64_t elapsedNs = 0;
    double offeredRps = 0.0;
    /** received / elapsed. */
    double achievedRps = 0.0;
    uint64_t p50Ns = 0;
    uint64_t p95Ns = 0;
    uint64_t p99Ns = 0;
    uint64_t maxNs = 0;

    uint64_t okCount() const
    {
        return statusCounts[static_cast<size_t>(Status::Ok)] +
               statusCounts[static_cast<size_t>(Status::Partial)];
    }
    uint64_t denyCount() const
    {
        uint64_t total = 0;
        for (size_t s = 0; s < kStatusCount; ++s) {
            if (isDeny(static_cast<Status>(s)))
                total += statusCounts[s];
        }
        return total;
    }
};

/** Run one open-loop load campaign against a server. */
LoadGenResult runLoadGen(const LoadGenConfig &cfg);

/**
 * Blocking single-request client: one (request, response) exchange
 * at a time over its own socket. Not a benchmark tool — a test and
 * example helper where determinism beats throughput.
 */
class SyncClient
{
  public:
    /** Result of one exchange. */
    struct Reply
    {
        /** False when no response arrived within the timeout. */
        bool received = false;
        Status status = Status::DenyService;
        std::vector<uint8_t> payload;
    };

    /** Connects the socket; fatal on socket errors. */
    SyncClient(const std::string &address, uint16_t port,
               uint64_t client_id);
    SyncClient(const SyncClient &) = delete;
    SyncClient &operator=(const SyncClient &) = delete;
    ~SyncClient();

    /**
     * Send one request (auto-incrementing nonce) and wait up to
     * @p timeout_ms for the matching response. Responses for stale
     * nonces are discarded.
     */
    Reply request(uint32_t bytes, uint8_t priority = 0,
                  int timeout_ms = 1000);

    /**
     * Send one raw datagram (possibly malformed) and wait up to
     * @p timeout_ms for any response. For protocol-robustness tests:
     * a well-behaved server answers garbage with silence, so
     * received == false is the expected outcome.
     */
    Reply sendRaw(const uint8_t *data, size_t len,
                  int timeout_ms = 100);

    uint64_t clientId() const { return clientId_; }
    /** The nonce the next request() will use. */
    uint64_t nextNonce() const { return nonce_ + 1; }
    /** Force the next nonce (for replay/gap tests). */
    void setNextNonce(uint64_t nonce) { nonce_ = nonce - 1; }

  private:
    int fd_ = -1;
    uint64_t clientId_ = 0;
    uint64_t nonce_ = 0;
};

} // namespace quac::net

#endif // QUAC_NET_LOADGEN_HH

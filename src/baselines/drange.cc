#include "baselines/drange.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "common/stats.hh"
#include "crypto/sha256.hh"

namespace quac::baselines
{

DRangeTrng::DRangeTrng(dram::DramModule &module, DRangeConfig cfg)
    : module_(module), cfg_(std::move(cfg)), noise_(cfg_.noiseSeed)
{
    if (cfg_.banks.empty())
        fatal("D-RaNGe needs at least one bank");
    for (uint32_t bank : cfg_.banks) {
        if (bank >= module_.geometry().banks)
            fatal("bank %u out of range", bank);
    }
    if (cfg_.probeRow >= module_.geometry().rowsPerBank)
        fatal("probe row %u out of range", cfg_.probeRow);
}

void
DRangeTrng::setup()
{
    const dram::Geometry &geom = module_.geometry();
    const dram::Calibration &cal = module_.calibration();
    plans_.clear();

    for (uint32_t bank_id : cfg_.banks) {
        dram::Bank &bank = module_.bank(bank_id);
        // D-RaNGe probes a row initialized to all-zeros (the data
        // pattern its authors found most failure-prone).
        bank.pokeRowFill(cfg_.probeRow, false);
        std::vector<float> probs =
            bank.earlyReadProbabilities(cfg_.probeRow,
                                        cal.drangeReadNs);

        DRangeBankPlan plan;
        plan.bank = bank_id;
        plan.row = cfg_.probeRow;

        uint32_t cb_bits = geom.cacheBlockBits;
        double best_entropy = -1.0;
        for (uint32_t col = 0; col < geom.cacheBlocksPerRow(); ++col) {
            double entropy = 0.0;
            for (uint32_t b = 0; b < cb_bits; ++b)
                entropy += binaryEntropy(probs[col * cb_bits + b]);
            if (entropy > best_entropy) {
                best_entropy = entropy;
                plan.bestColumn = col;
            }
        }
        plan.blockEntropy = best_entropy;

        plan.blockProbs.assign(
            probs.begin() + plan.bestColumn * cb_bits,
            probs.begin() + (plan.bestColumn + 1) * cb_bits);
        for (uint32_t b = 0; b < cb_bits; ++b) {
            float p = plan.blockProbs[b];
            if (p >= 0.4f && p <= 0.6f)
                plan.trngCells.push_back(b);
        }
        plans_.push_back(std::move(plan));
    }
    ready_ = true;
}

double
DRangeTrng::avgBlockEntropy() const
{
    QUAC_ASSERT(!plans_.empty(), "setup() not run");
    double sum = 0.0;
    for (const DRangeBankPlan &plan : plans_)
        sum += plan.blockEntropy;
    return sum / static_cast<double>(plans_.size());
}

double
DRangeTrng::avgTrngCells() const
{
    QUAC_ASSERT(!plans_.empty(), "setup() not run");
    double sum = 0.0;
    for (const DRangeBankPlan &plan : plans_)
        sum += static_cast<double>(plan.trngCells.size());
    return sum / static_cast<double>(plans_.size());
}

uint32_t
DRangeTrng::accessesPerNumber() const
{
    double entropy = avgBlockEntropy();
    QUAC_ASSERT(entropy > 0.0, "no entropy characterized");
    return static_cast<uint32_t>(
        std::max(1.0, std::ceil(cfg_.sibEntropyTarget / entropy)));
}

void
DRangeTrng::harvest()
{
    // One reduced-tRCD access per bank. Per-access samples are iid
    // Bernoulli(p) in the device model (see core/sa_stream.hh for the
    // equivalence argument), so harvesting samples from the
    // characterized probabilities matches replaying the command path.
    if (cfg_.enhanced) {
        for (const DRangeBankPlan &plan : plans_) {
            uint32_t accesses = accessesPerNumber();
            std::vector<uint8_t> raw;
            raw.reserve(static_cast<size_t>(accesses) *
                        plan.blockProbs.size() / 8);
            for (uint32_t a = 0; a < accesses; ++a) {
                uint8_t byte = 0;
                unsigned nbits = 0;
                for (float p : plan.blockProbs) {
                    byte = static_cast<uint8_t>(
                        (byte >> 1) |
                        (noise_.bernoulli(p) ? 0x80 : 0));
                    if (++nbits == 8) {
                        raw.push_back(byte);
                        byte = 0;
                        nbits = 0;
                    }
                }
            }
            Sha256::Digest digest = Sha256::hash(raw);
            buffer_.insert(buffer_.end(), digest.begin(), digest.end());
        }
    } else {
        for (const DRangeBankPlan &plan : plans_) {
            for (uint32_t cell : plan.trngCells) {
                bool bit = noise_.bernoulli(plan.blockProbs[cell]);
                bitAccum_ |= static_cast<uint64_t>(bit) << bitCount_;
                if (++bitCount_ == 8) {
                    buffer_.push_back(static_cast<uint8_t>(bitAccum_));
                    bitAccum_ = 0;
                    bitCount_ = 0;
                }
            }
        }
    }
}

void
DRangeTrng::fill(uint8_t *out, size_t len)
{
    if (!ready_)
        setup();
    size_t produced = 0;
    while (produced < len) {
        if (bufferHead_ == buffer_.size()) {
            buffer_.clear();
            bufferHead_ = 0;
            size_t guard = 0;
            while (buffer_.empty()) {
                harvest();
                if (++guard > 100000)
                    fatal("D-RaNGe harvests no entropy on this module");
            }
        }
        size_t take = std::min(buffer_.size() - bufferHead_,
                               len - produced);
        std::copy_n(buffer_.begin() +
                        static_cast<ptrdiff_t>(bufferHead_),
                    take, out + produced);
        bufferHead_ += take;
        produced += take;
    }
}

} // namespace quac::baselines

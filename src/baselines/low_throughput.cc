#include "baselines/low_throughput.hh"

namespace quac::baselines
{

LowThroughputModel
dpufModel(double dram_gib)
{
    // 4 MiB regions, 40 s refresh pause, 256 random bits per region
    // (paper Section 10.1: with all 32K regions of a 128 GiB system,
    // 0.20 Mb/s peak).
    double regions = dram_gib * 1024.0 / 4.0;
    double bits = regions * 256.0;
    double seconds = 40.0;

    LowThroughputModel model;
    model.name = "D-PUF";
    model.entropySource = "Retention Failure";
    model.throughputMbps = bits / seconds / 1e6;
    model.latency256Ns = seconds * 1e9;
    model.derivation = "256 bits per 4 MiB region after a 40 s "
                       "refresh pause, all regions in parallel";
    return model;
}

LowThroughputModel
kellerModel(double dram_gib)
{
    // 1 MiB regions; the paper reports 0.025 Mb/s for a fully
    // dedicated 128 GiB system. That corresponds to ~64 bits of
    // usable entropy per region over the 320 s accumulation window
    // the original work uses.
    double regions = dram_gib * 1024.0;
    double seconds = 320.0;
    double bits_per_region = 64.0;

    LowThroughputModel model;
    model.name = "Keller+";
    model.entropySource = "Retention Failure";
    model.throughputMbps = regions * bits_per_region / seconds / 1e6;
    model.latency256Ns = 40.0 * 1e9; // Table 2 entry
    model.derivation = "~64 random bits per 1 MiB region per 320 s "
                       "refresh pause, 128 GiB dedicated";
    return model;
}

LowThroughputModel
drngModel()
{
    LowThroughputModel model;
    model.name = "DRNG";
    model.entropySource = "DRAM Start-up";
    model.throughputMbps = 0.0; // not a streaming source
    // DDR4 power-up initialization sequence takes ~700 us.
    model.latency256Ns = 700.0 * 1e3;
    model.derivation = "requires a DRAM power cycle per batch; "
                       "latency is the DDR4 power-up sequence";
    return model;
}

LowThroughputModel
pyoModel(double cpu_ghz, unsigned channels)
{
    // 45000 CPU cycles per 8-bit number per channel.
    double ns_per_8bits = 45000.0 / cpu_ghz;

    LowThroughputModel model;
    model.name = "Pyo+";
    model.entropySource = "DRAM Cmd Schedule";
    model.throughputMbps =
        8.0 * channels / ns_per_8bits * 1e9 / 1e6;
    model.latency256Ns = (256.0 / 8.0) / channels * ns_per_8bits;
    model.derivation = "45000 cycles per 8-bit number at 3.2 GHz, "
                       "four channels in parallel";
    return model;
}

std::vector<LowThroughputModel>
lowThroughputModels()
{
    return {dpufModel(), drngModel(), kellerModel(), pyoModel()};
}

} // namespace quac::baselines

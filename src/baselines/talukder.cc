#include "baselines/talukder.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/stats.hh"
#include "crypto/sha256.hh"

namespace quac::baselines
{

TalukderTrng::TalukderTrng(dram::DramModule &module, TalukderConfig cfg)
    : module_(module), cfg_(std::move(cfg)), noise_(cfg_.noiseSeed)
{
    if (cfg_.banks.empty())
        fatal("Talukder+ needs at least one bank");
    const dram::Geometry &geom = module_.geometry();
    for (uint32_t bank : cfg_.banks) {
        if (bank >= geom.banks)
            fatal("bank %u out of range", bank);
    }
    if (cfg_.donorRow >= geom.rowsPerBank ||
        cfg_.victimRow >= geom.rowsPerBank) {
        fatal("probe rows out of range");
    }
    if (cfg_.donorRow == cfg_.victimRow)
        fatal("donor and victim rows must differ");
}

void
TalukderTrng::setup()
{
    const dram::Geometry &geom = module_.geometry();
    const dram::Calibration &cal = module_.calibration();
    plans_.clear();

    std::vector<uint64_t> donor_bits(geom.wordsPerRow(), ~uint64_t{0});

    for (uint32_t bank_id : cfg_.banks) {
        dram::Bank &bank = module_.bank(bank_id);
        bank.pokeRowFill(cfg_.donorRow, true);

        // Characterize several candidate victim rows (one segment
        // apart) and harvest the highest-entropy one, mirroring the
        // paper's use of per-module maximum row entropy.
        TalukderBankPlan plan;
        plan.bank = bank_id;
        plan.donorRow = cfg_.donorRow;
        plan.rowEntropy = -1.0;

        uint32_t cb_bits = geom.cacheBlockBits;
        for (uint32_t k = 0; k < std::max(1u, cfg_.victimCandidates);
             ++k) {
            uint32_t candidate = cfg_.victimRow +
                                 k * dram::Geometry::rowsPerSegment;
            if (candidate >= geom.rowsPerBank)
                break;
            if (geom.segmentOfRow(candidate) ==
                geom.segmentOfRow(cfg_.donorRow)) {
                continue;
            }
            bank.pokeRowFill(candidate, false);
            std::vector<float> probs = bank.racedActivateProbabilities(
                candidate, donor_bits, cal.talukderPreNs);
            double entropy = 0.0;
            for (float p : probs)
                entropy += binaryEntropy(p);
            if (entropy > plan.rowEntropy) {
                plan.rowEntropy = entropy;
                plan.victimRow = candidate;
                plan.rowProbs = std::move(probs);
            }
        }
        QUAC_ASSERT(plan.rowEntropy >= 0.0,
                    "no candidate victim rows in bank %u", bank_id);

        std::vector<double> cb_entropy(geom.cacheBlocksPerRow(), 0.0);
        for (uint32_t b = 0; b < geom.bitlinesPerRow; ++b) {
            double h = binaryEntropy(plan.rowProbs[b]);
            cb_entropy[b / cb_bits] += h;
            float p = plan.rowProbs[b];
            if (p >= 0.4f && p <= 0.6f)
                plan.strongCells.push_back(b);
        }
        plan.ranges = core::sibRanges(cb_entropy, cfg_.sibEntropyTarget);
        plans_.push_back(std::move(plan));
    }
    ready_ = true;
}

double
TalukderTrng::avgRowEntropy() const
{
    QUAC_ASSERT(!plans_.empty(), "setup() not run");
    double sum = 0.0;
    for (const TalukderBankPlan &plan : plans_)
        sum += plan.rowEntropy;
    return sum / static_cast<double>(plans_.size());
}

double
TalukderTrng::avgStrongCells() const
{
    QUAC_ASSERT(!plans_.empty(), "setup() not run");
    double sum = 0.0;
    for (const TalukderBankPlan &plan : plans_)
        sum += static_cast<double>(plan.strongCells.size());
    return sum / static_cast<double>(plans_.size());
}

uint32_t
TalukderTrng::sibPerRow() const
{
    QUAC_ASSERT(!plans_.empty(), "setup() not run");
    size_t total = 0;
    for (const TalukderBankPlan &plan : plans_)
        total += plan.ranges.size();
    return static_cast<uint32_t>(total / plans_.size());
}

uint32_t
TalukderTrng::columnsReadPerRow() const
{
    QUAC_ASSERT(!plans_.empty(), "setup() not run");
    size_t total = 0;
    for (const TalukderBankPlan &plan : plans_) {
        if (!plan.ranges.empty())
            total += plan.ranges.back().endColumn;
    }
    return static_cast<uint32_t>(total / plans_.size());
}

void
TalukderTrng::harvest()
{
    const dram::Geometry &geom = module_.geometry();
    uint32_t cb_bits = geom.cacheBlockBits;

    // One tRP-failure row harvest per bank (iid sampling from the
    // characterized probabilities; see core/sa_stream.hh).
    for (const TalukderBankPlan &plan : plans_) {
        if (cfg_.enhanced) {
            for (const core::ColumnRange &range : plan.ranges) {
                std::vector<uint8_t> raw;
                raw.reserve((range.endColumn - range.beginColumn) *
                            cb_bits / 8);
                uint8_t byte = 0;
                unsigned nbits = 0;
                for (uint32_t b = range.beginColumn * cb_bits;
                     b < range.endColumn * cb_bits; ++b) {
                    byte = static_cast<uint8_t>(
                        (byte >> 1) |
                        (noise_.bernoulli(plan.rowProbs[b]) ? 0x80
                                                            : 0));
                    if (++nbits == 8) {
                        raw.push_back(byte);
                        byte = 0;
                        nbits = 0;
                    }
                }
                Sha256::Digest digest = Sha256::hash(raw);
                buffer_.insert(buffer_.end(), digest.begin(),
                               digest.end());
            }
        } else {
            for (uint32_t cell : plan.strongCells) {
                bool bit = noise_.bernoulli(plan.rowProbs[cell]);
                bitAccum_ |= static_cast<uint64_t>(bit) << bitCount_;
                if (++bitCount_ == 8) {
                    buffer_.push_back(static_cast<uint8_t>(bitAccum_));
                    bitAccum_ = 0;
                    bitCount_ = 0;
                }
            }
        }
    }
}

void
TalukderTrng::fill(uint8_t *out, size_t len)
{
    if (!ready_)
        setup();
    size_t produced = 0;
    while (produced < len) {
        if (bufferHead_ == buffer_.size()) {
            buffer_.clear();
            bufferHead_ = 0;
            size_t guard = 0;
            while (buffer_.empty()) {
                harvest();
                if (++guard > 100000)
                    fatal("Talukder+ harvests no entropy here");
            }
        }
        size_t take = std::min(buffer_.size() - bufferHead_,
                               len - produced);
        std::copy_n(buffer_.begin() +
                        static_cast<ptrdiff_t>(bufferHead_),
                    take, out + produced);
        bufferHead_ += take;
        produced += take;
    }
}

} // namespace quac::baselines

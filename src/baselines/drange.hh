/**
 * @file
 * D-RaNGe (Kim et al., HPCA'19) reimplemented on the simulated DRAM:
 * random numbers from tRCD-violated reads (paper Section 7.4.1).
 *
 * Basic configuration: harvest only the handful of strongly
 * metastable "TRNG cells" in the best cache block (up to ~4 per
 * block). Enhanced configuration (the paper's throughput-optimized
 * variant): read the whole best cache block, accumulate reads until
 * 256 bits of Shannon entropy, and whiten with SHA-256.
 */

#ifndef QUAC_BASELINES_DRANGE_HH
#define QUAC_BASELINES_DRANGE_HH

#include <cstdint>
#include <vector>

#include "core/trng.hh"
#include "dram/module.hh"

namespace quac::baselines
{

/** Per-bank characterization outcome for D-RaNGe. */
struct DRangeBankPlan
{
    uint32_t bank = 0;
    uint32_t row = 0;          ///< Probed row (kept all-zeros).
    uint32_t bestColumn = 0;   ///< Highest-entropy cache block.
    double blockEntropy = 0.0; ///< Shannon entropy of that block.
    /** Bit offsets within the block with P(1) in [0.4, 0.6]. */
    std::vector<uint32_t> trngCells;
    /** P(1) for every bit of the best block. */
    std::vector<float> blockProbs;
};

/** D-RaNGe configuration. */
struct DRangeConfig
{
    std::vector<uint32_t> banks = {0, 1, 2, 3};
    /** Enhanced = whole-block harvesting + SHA-256. */
    bool enhanced = true;
    double sibEntropyTarget = 256.0;
    /** Row probed in each bank. */
    uint32_t probeRow = 8;
    uint64_t noiseSeed = 1;
};

/** The D-RaNGe generator. */
class DRangeTrng : public core::Trng
{
  public:
    DRangeTrng(dram::DramModule &module, DRangeConfig cfg = {});

    std::string
    name() const override
    {
        return cfg_.enhanced ? "D-RaNGe-Enhanced" : "D-RaNGe-Basic";
    }

    /** One-time tRCD-failure characterization. */
    void setup();

    void fill(uint8_t *out, size_t len) override;

    const std::vector<DRangeBankPlan> &plans() const { return plans_; }

    /** Average best-block entropy across banks (feeds Table 2). */
    double avgBlockEntropy() const;

    /** Average TRNG-cell count per best block. */
    double avgTrngCells() const;

    /** Reduced-tRCD accesses needed per 256-bit number (enhanced). */
    uint32_t accessesPerNumber() const;

  private:
    void harvest();

    dram::DramModule &module_;
    DRangeConfig cfg_;
    std::vector<DRangeBankPlan> plans_;
    bool ready_ = false;
    Xoshiro256pp noise_;
    std::vector<uint8_t> buffer_;
    size_t bufferHead_ = 0;
    /** Basic-mode partial byte accumulator. */
    uint64_t bitAccum_ = 0;
    unsigned bitCount_ = 0;
};

} // namespace quac::baselines

#endif // QUAC_BASELINES_DRANGE_HH

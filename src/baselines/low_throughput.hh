/**
 * @file
 * Analytical models of the low-throughput DRAM TRNGs the paper
 * compares against in Table 2 and Section 10.1. These mechanisms are
 * orders of magnitude too slow to simulate bit-by-bit; the paper
 * itself evaluates them analytically, and we reproduce its
 * derivations.
 */

#ifndef QUAC_BASELINES_LOW_THROUGHPUT_HH
#define QUAC_BASELINES_LOW_THROUGHPUT_HH

#include <string>
#include <vector>

namespace quac::baselines
{

/** Derived performance of one low-throughput proposal. */
struct LowThroughputModel
{
    std::string name;
    std::string entropySource;
    /** Peak random-number throughput in Mb/s (0 = not streaming). */
    double throughputMbps = 0.0;
    /** Latency to produce one 256-bit number, in ns. */
    double latency256Ns = 0.0;
    /** How the numbers were derived. */
    std::string derivation;
};

/**
 * D-PUF (Sutar et al.): retention failures accumulated over 40 s in
 * 4 MiB regions, SHA-256 per region.
 *
 * @param dram_gib total DRAM dedicated to generation.
 */
LowThroughputModel dpufModel(double dram_gib = 128.0);

/** Keller et al.: retention failures in 1 MiB regions. */
LowThroughputModel kellerModel(double dram_gib = 128.0);

/** DRNG (Eckert et al.): DRAM start-up values (needs a power cycle). */
LowThroughputModel drngModel();

/**
 * Pyo et al.: DRAM command-schedule jitter; 45000 CPU cycles per
 * 8-bit number on the Section 7.3 system (3.2 GHz, four channels).
 */
LowThroughputModel pyoModel(double cpu_ghz = 3.2,
                            unsigned channels = 4);

/** All four, in Table 2 order. */
std::vector<LowThroughputModel> lowThroughputModels();

} // namespace quac::baselines

#endif // QUAC_BASELINES_LOW_THROUGHPUT_HH

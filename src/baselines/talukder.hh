/**
 * @file
 * Talukder et al. (ICCE'19) reimplemented on the simulated DRAM:
 * random numbers from tRP-violated activations (paper Section 7.4.2).
 *
 * A fully-sensed donor row charges the row buffer; a precharge with
 * violated tRP leaves a residual that races the victim row's cells,
 * flipping weak cells. Basic configuration harvests the strongly
 * random cells raw; enhanced reads SHA-input-block ranges of the
 * victim row and whitens with SHA-256, with RowClone re-init.
 */

#ifndef QUAC_BASELINES_TALUKDER_HH
#define QUAC_BASELINES_TALUKDER_HH

#include <cstdint>
#include <vector>

#include "core/characterizer.hh"
#include "core/trng.hh"
#include "dram/module.hh"

namespace quac::baselines
{

/** Per-bank characterization outcome for the tRP-failure TRNG. */
struct TalukderBankPlan
{
    uint32_t bank = 0;
    uint32_t donorRow = 0;   ///< All-ones row that charges the SAs.
    uint32_t victimRow = 0;  ///< All-zeros row re-activated early.
    double rowEntropy = 0.0; ///< Shannon entropy across the row.
    /** SHA input block column ranges (enhanced). */
    std::vector<core::ColumnRange> ranges;
    /** Bitlines with P(flip) in [0.4, 0.6] (basic harvesting). */
    std::vector<uint32_t> strongCells;
    /** P(1) per bitline of the victim row after the violation. */
    std::vector<float> rowProbs;
};

/** Talukder+ configuration. */
struct TalukderConfig
{
    std::vector<uint32_t> banks = {0, 1, 2, 3};
    bool enhanced = true;
    double sibEntropyTarget = 256.0;
    uint32_t donorRow = 8;
    /** First candidate victim row. */
    uint32_t victimRow = 12;
    /**
     * Number of candidate victim rows characterized per bank; the
     * highest-entropy one is harvested (the paper reports the
     * average of per-module *maximum* row entropies).
     */
    uint32_t victimCandidates = 8;
    uint64_t noiseSeed = 1;
};

/** The precharge-failure generator. */
class TalukderTrng : public core::Trng
{
  public:
    TalukderTrng(dram::DramModule &module, TalukderConfig cfg = {});

    std::string
    name() const override
    {
        return cfg_.enhanced ? "Talukder+-Enhanced"
                             : "Talukder+-Basic";
    }

    /** One-time tRP-failure characterization. */
    void setup();

    void fill(uint8_t *out, size_t len) override;

    const std::vector<TalukderBankPlan> &plans() const
    {
        return plans_;
    }

    /** Average row entropy across banks (feeds Table 2). */
    double avgRowEntropy() const;

    /** Average strongly-random cell count per row. */
    double avgStrongCells() const;

    /** SHA input blocks per harvested row (enhanced). */
    uint32_t sibPerRow() const;

    /** Cache blocks covered by the SIB ranges (schedule input). */
    uint32_t columnsReadPerRow() const;

  private:
    void harvest();

    dram::DramModule &module_;
    TalukderConfig cfg_;
    std::vector<TalukderBankPlan> plans_;
    bool ready_ = false;
    Xoshiro256pp noise_;
    std::vector<uint8_t> buffer_;
    size_t bufferHead_ = 0;
    uint64_t bitAccum_ = 0;
    unsigned bitCount_ = 0;
};

} // namespace quac::baselines

#endif // QUAC_BASELINES_TALUKDER_HH

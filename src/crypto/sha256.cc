#include "crypto/sha256.hh"

#include <atomic>
#include <cstring>

#include "common/vec_clones.hh"

/**
 * SHA-NI support guard, mirroring vec_clones.hh: x86-64 with the
 * target attribute and __builtin_cpu_supports, and not a sanitizer
 * build (keep instrumented binaries on the plain scalar path).
 */
#if defined(__x86_64__) && defined(__has_attribute) && \
    !defined(QUAC_SANITIZED)
#if __has_attribute(target) && __has_include(<immintrin.h>)
#define QUAC_SHA_NI 1
#include <immintrin.h>
#endif
#endif

namespace quac
{

namespace
{

constexpr std::array<uint32_t, 64> kRoundConstants = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u,
    0x3956c25bu, 0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u,
    0xd807aa98u, 0x12835b01u, 0x243185beu, 0x550c7dc3u,
    0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u, 0xc19bf174u,
    0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau,
    0x983e5152u, 0xa831c66du, 0xb00327c8u, 0xbf597fc7u,
    0xc6e00bf3u, 0xd5a79147u, 0x06ca6351u, 0x14292967u,
    0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu, 0x53380d13u,
    0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u,
    0xd192e819u, 0xd6990624u, 0xf40e3585u, 0x106aa070u,
    0x19a4c116u, 0x1e376c08u, 0x2748774cu, 0x34b0bcb5u,
    0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu, 0x682e6ff3u,
    0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u,
};

constexpr std::array<uint32_t, 8> kInitialState = {
    0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
    0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u,
};

inline uint32_t
rotr(uint32_t x, unsigned n)
{
    return (x >> n) | (x << (32 - n));
}

/** SHA-NI path toggle (process-global; benches/tests flip it). */
std::atomic<bool> shaNiEnabled{true};

/** Padded block count of a @p len byte message (pad + length word). */
inline uint64_t
paddedBlocks(uint64_t len)
{
    return (len + 8) / 64 + 1;
}

/**
 * Pointer to 64-byte padded block @p r of a message: the data itself
 * while the block lies fully inside it, otherwise the block is
 * materialized into @p buf with the 0x80 terminator, zero padding and
 * (in the final block) the big-endian bit length.
 */
const uint8_t *
paddedBlock(const uint8_t *data, uint64_t len, uint64_t r, uint8_t *buf)
{
    uint64_t base = r * 64;
    if (base + 64 <= len)
        return data + base;
    for (int k = 0; k < 64; ++k) {
        uint64_t pos = base + k;
        if (pos < len)
            buf[k] = data[pos];
        else
            buf[k] = pos == len ? 0x80 : 0x00;
    }
    if (r == paddedBlocks(len) - 1) {
        uint64_t bit_len = len * 8;
        for (int k = 0; k < 8; ++k)
            buf[56 + k] = static_cast<uint8_t>(bit_len >> (56 - 8 * k));
    }
    return buf;
}

/**
 * Four 64-byte blocks, one per lane, through the compression rounds
 * in lockstep. @p state is lane-arrayed: state[word][lane]. The body
 * is the scalar rounds with every temporary widened to a [4] array
 * and the lane loop innermost, which target_clones turns into 4x32
 * column vectors on AVX2/AVX-512 hosts; the arithmetic per lane is
 * the same sequence as processBlock's, so digests are bit-identical.
 */
QUAC_VEC_CLONES void
processBlock4(uint32_t state[8][4], const uint8_t *const blocks[4])
{
    uint32_t w[16][4];
    for (int i = 0; i < 16; ++i) {
        for (int l = 0; l < 4; ++l) {
            const uint8_t *p = blocks[l] + 4 * i;
            w[i][l] = (static_cast<uint32_t>(p[0]) << 24) |
                      (static_cast<uint32_t>(p[1]) << 16) |
                      (static_cast<uint32_t>(p[2]) << 8) |
                      static_cast<uint32_t>(p[3]);
        }
    }

    uint32_t a[4], b[4], c[4], d[4], e[4], f[4], g[4], h[4];
    for (int l = 0; l < 4; ++l) {
        a[l] = state[0][l];
        b[l] = state[1][l];
        c[l] = state[2][l];
        d[l] = state[3][l];
        e[l] = state[4][l];
        f[l] = state[5][l];
        g[l] = state[6][l];
        h[l] = state[7][l];
    }

    for (int i = 0; i < 64; ++i) {
        uint32_t k = kRoundConstants[i];
        for (int l = 0; l < 4; ++l) {
            uint32_t wi;
            if (i < 16) {
                wi = w[i][l];
            } else {
                uint32_t w15 = w[(i - 15) & 15][l];
                uint32_t w2 = w[(i - 2) & 15][l];
                uint32_t s0 =
                    rotr(w15, 7) ^ rotr(w15, 18) ^ (w15 >> 3);
                uint32_t s1 =
                    rotr(w2, 17) ^ rotr(w2, 19) ^ (w2 >> 10);
                wi = w[i & 15][l] + s0 + w[(i - 7) & 15][l] + s1;
                w[i & 15][l] = wi;
            }
            uint32_t s1 = rotr(e[l], 6) ^ rotr(e[l], 11) ^
                          rotr(e[l], 25);
            uint32_t ch = (e[l] & f[l]) ^ (~e[l] & g[l]);
            uint32_t temp1 = h[l] + s1 + ch + k + wi;
            uint32_t s0 = rotr(a[l], 2) ^ rotr(a[l], 13) ^
                          rotr(a[l], 22);
            uint32_t maj =
                (a[l] & b[l]) ^ (a[l] & c[l]) ^ (b[l] & c[l]);
            uint32_t temp2 = s0 + maj;
            h[l] = g[l];
            g[l] = f[l];
            f[l] = e[l];
            e[l] = d[l] + temp1;
            d[l] = c[l];
            c[l] = b[l];
            b[l] = a[l];
            a[l] = temp1 + temp2;
        }
    }

    for (int l = 0; l < 4; ++l) {
        state[0][l] += a[l];
        state[1][l] += b[l];
        state[2][l] += c[l];
        state[3][l] += d[l];
        state[4][l] += e[l];
        state[5][l] += f[l];
        state[6][l] += g[l];
        state[7][l] += h[l];
    }
}

#ifdef QUAC_SHA_NI

/** Round constants k[4g..4g+3] as one vector. */
#define QUAC_SHA_K(g)                                                \
    _mm_loadu_si128(reinterpret_cast<const __m128i *>(               \
        kRoundConstants.data() + 4 * (g)))

/** Four rounds: two sha256rnds2 issues over the w+k vector. */
#define QUAC_SHA_QROUND(wk)                                          \
    do {                                                             \
        __m128i wk_ = (wk);                                          \
        cdgh = _mm_sha256rnds2_epu32(cdgh, abef, wk_);               \
        wk_ = _mm_shuffle_epi32(wk_, 0x0E);                          \
        abef = _mm_sha256rnds2_epu32(abef, cdgh, wk_);               \
    } while (0)

/** One 64-byte block through the CPU's SHA extensions. */
__attribute__((target("sha,sse4.1"))) void
processBlockShaNi(uint32_t *state, const uint8_t *block)
{
    const __m128i swap = _mm_set_epi64x(0x0C0D0E0F08090A0BULL,
                                        0x0405060700010203ULL);

    // Repack {a..d}, {e..h} into the ABEF/CDGH lane order the
    // sha256rnds2 instruction expects.
    __m128i abcd = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(state));
    __m128i efgh = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(state + 4));
    __m128i tmp = _mm_shuffle_epi32(abcd, 0xB1);
    efgh = _mm_shuffle_epi32(efgh, 0x1B);
    __m128i abef = _mm_alignr_epi8(tmp, efgh, 8);
    __m128i cdgh = _mm_blend_epi16(efgh, tmp, 0xF0);

    const __m128i abef_in = abef;
    const __m128i cdgh_in = cdgh;

    // Message schedule in a rotating 4-vector window: group g holds
    // w[4g..4g+3]; groups 4..15 extend the schedule from the
    // previous four groups before their rounds run.
    __m128i m[4];
    for (int g = 0; g < 4; ++g) {
        m[g] = _mm_shuffle_epi8(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                block + 16 * g)),
            swap);
        QUAC_SHA_QROUND(_mm_add_epi32(m[g], QUAC_SHA_K(g)));
    }
    for (int g = 4; g < 16; ++g) {
        __m128i w = _mm_sha256msg1_epu32(m[g & 3], m[(g + 1) & 3]);
        w = _mm_add_epi32(
            w, _mm_alignr_epi8(m[(g + 3) & 3], m[(g + 2) & 3], 4));
        w = _mm_sha256msg2_epu32(w, m[(g + 3) & 3]);
        m[g & 3] = w;
        QUAC_SHA_QROUND(_mm_add_epi32(w, QUAC_SHA_K(g)));
    }

    abef = _mm_add_epi32(abef, abef_in);
    cdgh = _mm_add_epi32(cdgh, cdgh_in);

    // Unpack ABEF/CDGH back to {a..d}, {e..h}.
    tmp = _mm_shuffle_epi32(abef, 0x1B);
    cdgh = _mm_shuffle_epi32(cdgh, 0xB1);
    abcd = _mm_blend_epi16(tmp, cdgh, 0xF0);
    efgh = _mm_alignr_epi8(cdgh, tmp, 8);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(state), abcd);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(state + 4), efgh);
}

#undef QUAC_SHA_QROUND
#undef QUAC_SHA_K

#endif // QUAC_SHA_NI

} // anonymous namespace

bool
Sha256::hwAvailable()
{
#ifdef QUAC_SHA_NI
    static const bool available = __builtin_cpu_supports("sha") &&
                                  __builtin_cpu_supports("sse4.1");
    return available;
#else
    return false;
#endif
}

bool
Sha256::setHwEnabled(bool enabled)
{
    return shaNiEnabled.exchange(enabled);
}

bool
Sha256::hwEnabled()
{
    return hwAvailable() &&
           // relaxed: one-time CPU-feature probe result; any thread
           // computes the same value.
           shaNiEnabled.load(std::memory_order_relaxed);
}

Sha256::Sha256()
{
    reset();
}

void
Sha256::reset()
{
    state_ = kInitialState;
    totalBytes_ = 0;
    bufferLen_ = 0;
}

void
Sha256::update(const uint8_t *data, size_t len)
{
    totalBytes_ += len;
    while (len > 0) {
        size_t take = std::min(len, buffer_.size() - bufferLen_);
        std::memcpy(buffer_.data() + bufferLen_, data, take);
        bufferLen_ += take;
        data += take;
        len -= take;
        if (bufferLen_ == buffer_.size()) {
            processBlock(buffer_.data());
            bufferLen_ = 0;
        }
    }
}

void
Sha256::update(const std::vector<uint8_t> &data)
{
    update(data.data(), data.size());
}

void
Sha256::update(const std::string &data)
{
    update(reinterpret_cast<const uint8_t *>(data.data()), data.size());
}

Sha256::Digest
Sha256::finish()
{
    uint64_t bit_len = totalBytes_ * 8;

    // Append the 0x80 terminator, zero-pad to 56 mod 64, then append
    // the 64-bit big-endian message length.
    uint8_t terminator = 0x80;
    update(&terminator, 1);
    totalBytes_ -= 1; // update() counts payload only; undo bookkeeping

    uint8_t zero = 0x00;
    while (bufferLen_ != 56) {
        update(&zero, 1);
        totalBytes_ -= 1;
    }

    std::array<uint8_t, 8> len_bytes;
    for (int i = 0; i < 8; ++i)
        len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
    update(len_bytes.data(), len_bytes.size());

    Digest digest;
    for (int i = 0; i < 8; ++i) {
        digest[4 * i + 0] = static_cast<uint8_t>(state_[i] >> 24);
        digest[4 * i + 1] = static_cast<uint8_t>(state_[i] >> 16);
        digest[4 * i + 2] = static_cast<uint8_t>(state_[i] >> 8);
        digest[4 * i + 3] = static_cast<uint8_t>(state_[i]);
    }
    reset();
    return digest;
}

void
Sha256::processBlock(const uint8_t *block)
{
#ifdef QUAC_SHA_NI
    if (hwEnabled()) {
        processBlockShaNi(state_.data(), block);
        return;
    }
#endif
    std::array<uint32_t, 64> w;
    for (int i = 0; i < 16; ++i) {
        w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
               (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
               (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
               static_cast<uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
        uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^
                      (w[i - 15] >> 3);
        uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^
                      (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
    uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

    for (int i = 0; i < 64; ++i) {
        uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        uint32_t ch = (e & f) ^ (~e & g);
        uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
        uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        uint32_t temp2 = s0 + maj;

        h = g;
        g = f;
        f = e;
        e = d + temp1;
        d = c;
        c = b;
        b = a;
        a = temp1 + temp2;
    }

    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    state_[4] += e;
    state_[5] += f;
    state_[6] += g;
    state_[7] += h;
}

void
Sha256::hash4(const Job *jobs, Digest *out)
{
    uint64_t blocks_of[kLanes];
    uint64_t lockstep = ~uint64_t{0};
    for (size_t l = 0; l < kLanes; ++l) {
        blocks_of[l] = paddedBlocks(jobs[l].len);
        lockstep = std::min(lockstep, blocks_of[l]);
    }

    uint32_t state[8][4];
    for (int i = 0; i < 8; ++i) {
        for (int l = 0; l < 4; ++l)
            state[i][l] = kInitialState[i];
    }

    // Equal-length lanes (the TRNG's SIB batches) run everything,
    // padding block included, through the interleaved rounds; mixed
    // lengths fall back to the plain rounds for the longer tails.
    uint8_t pad[kLanes][64];
    const uint8_t *block[kLanes];
    for (uint64_t r = 0; r < lockstep; ++r) {
        for (size_t l = 0; l < kLanes; ++l)
            block[l] = paddedBlock(jobs[l].data, jobs[l].len, r,
                                   pad[l]);
        processBlock4(state, block);
    }

    for (size_t l = 0; l < kLanes; ++l) {
        Sha256 tail;
        for (int i = 0; i < 8; ++i)
            tail.state_[i] = state[i][l];
        for (uint64_t r = lockstep; r < blocks_of[l]; ++r) {
            tail.processBlock(
                paddedBlock(jobs[l].data, jobs[l].len, r, pad[l]));
        }
        for (int i = 0; i < 8; ++i) {
            out[l][4 * i + 0] =
                static_cast<uint8_t>(tail.state_[i] >> 24);
            out[l][4 * i + 1] =
                static_cast<uint8_t>(tail.state_[i] >> 16);
            out[l][4 * i + 2] =
                static_cast<uint8_t>(tail.state_[i] >> 8);
            out[l][4 * i + 3] = static_cast<uint8_t>(tail.state_[i]);
        }
    }
}

void
Sha256::hashBatch(const Job *jobs, size_t count, Digest *out)
{
    size_t i = 0;
    if (!hwEnabled()) {
        // SHA-NI beats any lane interleaving when present; without
        // it the four-lane schedule is the fast path.
        for (; i + kLanes <= count; i += kLanes)
            hash4(jobs + i, out + i);
    }
    for (; i < count; ++i)
        out[i] = hash(jobs[i].data, jobs[i].len);
}

Sha256::Digest
Sha256::hash(const uint8_t *data, size_t len)
{
    Sha256 hasher;
    hasher.update(data, len);
    return hasher.finish();
}

Sha256::Digest
Sha256::hash(const std::vector<uint8_t> &data)
{
    return hash(data.data(), data.size());
}

std::string
Sha256::hex(const Digest &digest)
{
    static const char *digits = "0123456789abcdef";
    std::string out;
    out.reserve(64);
    for (uint8_t byte : digest) {
        out.push_back(digits[byte >> 4]);
        out.push_back(digits[byte & 0xf]);
    }
    return out;
}

} // namespace quac

/**
 * @file
 * SHA-256 (FIPS 180-2) implemented from scratch.
 *
 * The paper uses SHA-256 as the post-processing (whitening) step of
 * QUAC-TRNG: each 512-bit-wide read that carries >= 256 bits of
 * Shannon entropy is hashed down to a 256-bit random number.
 */

#ifndef QUAC_CRYPTO_SHA256_HH
#define QUAC_CRYPTO_SHA256_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace quac
{

/**
 * Incremental SHA-256 hasher.
 *
 * The compression function has two implementations: the portable
 * scalar rounds and an x86 SHA-NI path (the CPU's SHA extensions,
 * one _mm_sha256rnds2 per two rounds). The hardware path is guarded
 * like common/vec_clones.hh — x86-64 only, compiled out under the
 * sanitizers — and selected at runtime via __builtin_cpu_supports,
 * so the binary stays portable. SHA-NI cannot use target_clones
 * directly (its body is intrinsics, not portable code the compiler
 * could clone), hence the explicit two-function dispatch. Both paths
 * are bit-identical; setHwEnabled(false) forces the scalar rounds
 * for benchmarking and differential tests.
 */
class Sha256
{
  public:
    /** The 32-byte digest type. */
    using Digest = std::array<uint8_t, 32>;

    /** True when this build and CPU support the SHA-NI path. */
    static bool hwAvailable();

    /**
     * Enable or disable the SHA-NI path (enabled by default when
     * available). Returns the previous setting. Process-global, for
     * benchmarks and differential tests.
     */
    static bool setHwEnabled(bool enabled);

    /** True when the SHA-NI path is available and enabled. */
    static bool hwEnabled();

    Sha256();

    /** Reset to the initial state. */
    void reset();

    /** Absorb @p len bytes from @p data. */
    void update(const uint8_t *data, size_t len);

    /** Absorb a byte vector. */
    void update(const std::vector<uint8_t> &data);

    /** Absorb the bytes of a string. */
    void update(const std::string &data);

    /** Apply padding and produce the digest; the hasher then resets. */
    Digest finish();

    /** One-shot convenience hash. */
    static Digest hash(const uint8_t *data, size_t len);

    /** One-shot convenience hash of a byte vector. */
    static Digest hash(const std::vector<uint8_t> &data);

    /** Lane width of the interleaved message schedule. */
    static constexpr size_t kLanes = 4;

    /** One independent message for hashBatch(). */
    struct Job
    {
        const uint8_t *data;
        size_t len;
    };

    /**
     * Hash @p count independent messages into out[0..count).
     *
     * With the SHA-NI path enabled the messages go one at a time
     * through the hardware rounds (nothing beats them). Otherwise
     * groups of kLanes messages run in lockstep through a lane-array
     * message schedule — plain scalar code over [4] arrays that
     * target_clones (common/vec_clones.hh) compiles to AVX2/AVX-512
     * column vectors, so the four banks' SIB hashes of one TRNG
     * iteration cost about one scalar hash. Bit-identical to hash()
     * per message, any mix of lengths.
     */
    static void hashBatch(const Job *jobs, size_t count, Digest *out);

    /** Render a digest as lowercase hex. */
    static std::string hex(const Digest &digest);

  private:
    void processBlock(const uint8_t *block);

    /** hashBatch()'s interleaved kernel for one group of kLanes. */
    static void hash4(const Job *jobs, Digest *out);

    std::array<uint32_t, 8> state_;
    std::array<uint8_t, 64> buffer_;
    uint64_t totalBytes_;
    size_t bufferLen_;
};

} // namespace quac

#endif // QUAC_CRYPTO_SHA256_HH
